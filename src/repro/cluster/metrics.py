"""Rolling-window usage meters.

PLASMA's profiling runtime reports resource *percentages over the recent
past* (the elasticity period), not lifetime averages.  These meters
accumulate usage into fixed-width time buckets so that "CPU% over the last
N ms" is O(buckets) to answer and old history is forgotten automatically.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim import Simulator

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

__all__ = ["WindowedMeter", "ArrayMeter", "GaugeSeries",
           "AvailabilityMeter", "HAS_NUMPY"]

#: Whether :class:`ArrayMeter` is available in this environment.
HAS_NUMPY = _np is not None


class WindowedMeter:
    """Accumulates a quantity (busy-ms, bytes, message counts) into time
    buckets and answers windowed totals and rates.

    ``bucket_ms`` trades precision for memory; the default 500 ms is far
    finer than any elasticity period used in the paper (60–180 s).
    """

    def __init__(self, sim: Simulator, bucket_ms: float = 500.0,
                 keep_buckets: int = 720) -> None:
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        self._sim = sim
        self._bucket_ms = bucket_ms
        self._keep = keep_buckets
        self._buckets: List[Tuple[int, float]] = []  # (bucket index, total)
        self._lifetime = 0.0

    @property
    def lifetime_total(self) -> float:
        """Total accumulated since creation (never forgotten)."""
        return self._lifetime

    def add(self, amount: float, at: float = None) -> None:
        """Record ``amount`` at time ``at`` (default: now)."""
        when = self._sim.now if at is None else at
        index = int(when // self._bucket_ms)
        self._lifetime += amount
        if self._buckets and self._buckets[-1][0] == index:
            last_index, total = self._buckets[-1]
            self._buckets[-1] = (last_index, total + amount)
        else:
            self._buckets.append((index, amount))
            if len(self._buckets) > self._keep:
                del self._buckets[: len(self._buckets) - self._keep]

    def total(self, window_ms: float) -> float:
        """Sum recorded over the trailing ``window_ms``."""
        if window_ms <= 0:
            return 0.0
        cutoff = int((self._sim.now - window_ms) // self._bucket_ms)
        return sum(total for index, total in self._buckets
                   if index >= cutoff)

    def rate_per_ms(self, window_ms: float) -> float:
        """Average accumulation rate over the trailing window.

        The divisor is clamped to the elapsed simulation time so early
        queries (before one full window has passed) are not diluted.
        """
        effective = min(window_ms, self._sim.now) if self._sim.now > 0 else window_ms
        if effective <= 0:
            return 0.0
        return self.total(window_ms) / effective


class ArrayMeter:
    """Windowed accumulator with numpy-batched adds.

    Same query contract as :class:`repro.core.profiling.RingMeter` —
    ``total(w)`` is bit-identical to ``WindowedMeter.total(w)`` over the
    same event sequence — but the *add* path is two plain list appends;
    the bucketing work is deferred and vectorized.  A flush (triggered by
    any query) converts the pending ``(when, amount)`` run to bucket
    indices with one vectorized floor-divide and reduces each bucket with
    ``np.bincount``, which accumulates weights in input order with C
    doubles — the same left-to-right association the scalar meters use,
    so bucket totals (and hence window totals) stay bit-identical.

    Two cases leave the vectorized path to preserve that association:

    * pending adds that continue the still-open last bucket are folded in
      one at a time (``(((old + a1) + a2) ...)``, not ``old + (a1 + a2)``);
    * a batch with out-of-order timestamps (possible only through an
      explicit ``at=``) replays sequentially, because ``WindowedMeter``
      opens a *new* bucket for a revisited index while ``bincount`` would
      merge it into the earlier one.

    Requires numpy (check :data:`HAS_NUMPY`); the profiling runtime only
    selects this backend when explicitly configured.
    """

    __slots__ = ("_sim", "_bucket_ms", "_window_ms", "_max_buckets",
                 "_buckets", "_closed_sum", "_stale", "_lifetime",
                 "_pending_when", "_pending_amount", "_monotone",
                 "_last_when")

    def __init__(self, sim: Simulator, window_ms: float,
                 bucket_ms: float = 500.0) -> None:
        if _np is None:
            raise RuntimeError("ArrayMeter requires numpy")
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        if window_ms < 0:
            raise ValueError("window_ms must be non-negative")
        self._sim = sim
        self._bucket_ms = bucket_ms
        self._window_ms = window_ms
        # Same retention as RingMeter: the window plus the partially
        # expired boundary bucket WindowedMeter's cutoff still counts.
        self._max_buckets = int(window_ms // bucket_ms) + 2
        self._buckets: Deque[List[float]] = deque()  # [bucket index, total]
        self._closed_sum = 0.0
        self._stale = False
        self._lifetime = 0.0
        self._pending_when: List[float] = []
        self._pending_amount: List[float] = []
        self._monotone = True
        self._last_when = float("-inf")

    @property
    def lifetime_total(self) -> float:
        """Total accumulated since creation (never forgotten)."""
        return self._lifetime

    @property
    def window_ms(self) -> float:
        return self._window_ms

    def add(self, amount: float, at: Optional[float] = None) -> None:
        """Record ``amount`` at time ``at`` (default: now)."""
        when = self._sim.now if at is None else at
        self._lifetime += amount
        if when < self._last_when:
            self._monotone = False
        self._last_when = when
        self._pending_when.append(when)
        self._pending_amount.append(amount)

    # -- flush ---------------------------------------------------------------

    def _append_bucket(self, index: int, total: float) -> None:
        buckets = self._buckets
        if buckets:
            self._closed_sum += buckets[-1][1]
        buckets.append([index, total])

    def _evict(self) -> None:
        buckets = self._buckets
        floor = buckets[-1][0] - self._max_buckets
        while buckets[0][0] < floor:
            buckets.popleft()
            self._stale = True

    def _flush(self) -> None:
        pending_when = self._pending_when
        if not pending_when:
            return
        pending_amount = self._pending_amount
        self._pending_when = []
        self._pending_amount = []
        buckets = self._buckets
        if not self._monotone:
            # Rare (explicit out-of-order `at=`): replay one at a time,
            # exactly WindowedMeter.add's append-or-merge rule.
            self._monotone = True
            bucket_ms = self._bucket_ms
            for when, amount in zip(pending_when, pending_amount):
                index = int(when // bucket_ms)
                if buckets and buckets[-1][0] == index:
                    buckets[-1][1] += amount
                else:
                    self._append_bucket(index, amount)
                    self._evict()
            return
        when_arr = _np.asarray(pending_when, dtype=_np.float64)
        amount_arr = _np.asarray(pending_amount, dtype=_np.float64)
        indices = (when_arr // self._bucket_ms).astype(_np.int64)
        start = 0
        if buckets and indices[0] == buckets[-1][0]:
            # Continuation of the open bucket: fold sequentially so the
            # float association matches per-add accumulation.
            run_end = int(_np.searchsorted(indices, buckets[-1][0],
                                           side="right"))
            last = buckets[-1]
            for amount in amount_arr[:run_end].tolist():
                last[1] += amount
            start = run_end
        if start < len(indices):
            rest_idx = indices[start:]
            rest_amt = amount_arr[start:]
            base = rest_idx[0]
            # Monotone input: unique preserves arrival order, and
            # bincount reduces each bucket's contiguous run in input
            # order — identical association to sequential adds.
            uniq, inverse = _np.unique(rest_idx - base,
                                       return_inverse=True)
            sums = _np.bincount(inverse, weights=rest_amt)
            for index, total in zip((uniq + base).tolist(),
                                    sums.tolist()):
                self._append_bucket(index, total)
            self._evict()

    # -- queries -------------------------------------------------------------

    def total(self, window_ms: Optional[float] = None) -> float:
        """Sum recorded over the trailing window (default: configured).

        Bit-identical to ``WindowedMeter.total`` / ``RingMeter.total``:
        buckets at or above ``int((now - window) // bucket_ms)`` are
        included, summed oldest-first.
        """
        self._flush()
        window = self._window_ms if window_ms is None else window_ms
        if window <= 0:
            return 0.0
        buckets = self._buckets
        if not buckets:
            return 0.0
        cutoff = int((self._sim.now - self._window_ms) // self._bucket_ms)
        while buckets and buckets[0][0] < cutoff:
            buckets.popleft()
            self._stale = True
        if not buckets:
            self._closed_sum = 0.0
            self._stale = False
            return 0.0
        if self._stale:
            closed = 0.0
            for position in range(len(buckets) - 1):
                closed += buckets[position][1]
            self._closed_sum = closed
            self._stale = False
        if window >= self._window_ms:
            return self._closed_sum + buckets[-1][1]
        narrow_cutoff = int((self._sim.now - window) // self._bucket_ms)
        result = 0.0
        for index, bucket_total in buckets:
            if index >= narrow_cutoff:
                result += bucket_total
        return result

    def rate_per_ms(self, window_ms: Optional[float] = None) -> float:
        """Average accumulation rate over the trailing window, with the
        divisor clamped to elapsed time (same contract as WindowedMeter)."""
        window = self._window_ms if window_ms is None else window_ms
        now = self._sim.now
        effective = min(window, now) if now > 0 else window
        if effective <= 0:
            return 0.0
        return self.total(window) / effective


class GaugeSeries:
    """A recorded time series of (time, value) samples.

    Used by the bench harness to capture CPU%, actor counts and latency
    curves that reproduce the paper's figures.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time_ms: float, value: float) -> None:
        self.samples.append((time_ms, value))

    def values(self) -> List[float]:
        return [value for _t, value in self.samples]

    def times(self) -> List[float]:
        return [t for t, _value in self.samples]

    def last(self) -> float:
        if not self.samples:
            raise ValueError(f"series {self.name!r} is empty")
        return self.samples[-1][1]

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(values) / len(values)

    def mean_between(self, start_ms: float, end_ms: float) -> float:
        window = [v for t, v in self.samples if start_ms <= t <= end_ms]
        if not window:
            raise ValueError(
                f"series {self.name!r} has no samples in "
                f"[{start_ms}, {end_ms}]")
        return sum(window) / len(window)

    def __len__(self) -> int:
        return len(self.samples)


class AvailabilityMeter:
    """Per-window request-outcome accounting for availability reporting.

    Clients (or any request source) record each request as ``success``,
    ``failure`` (error reply — typically the target actor is gone),
    ``timeout`` (no reply within the caller's deadline), ``rejected``
    (admission control turned it away with a retriable ``Overloaded``
    NACK), or ``shed`` (a bounded mailbox dropped it).  Outcomes are
    bucketed into fixed-width time windows so benchmarks can report
    availability *during* a fault window separately from availability
    after recovery, plus how long the disruption lasted.

    Accounting is conserved by construction: every recorded attempt is
    exactly one outcome, so ``sum(totals.values()) == issued``.

    Successful requests may also carry a latency sample; those feed a
    :class:`~repro.core.profiling.LatencyRecorder` so availability
    reports can show p50/p95/p99 next to the outcome counts (the same
    recorder type the live front door uses).
    """

    OUTCOMES = ("success", "failure", "timeout", "rejected", "shed")

    def __init__(self, sim: Simulator, window_ms: float = 5_000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.sim = sim
        self.window_ms = window_ms
        self._samples: List[Tuple[float, str]] = []
        self.totals: Dict[str, int] = {o: 0 for o in self.OUTCOMES}
        self._first_disruption: Optional[float] = None
        self._last_disruption: Optional[float] = None
        # Imported lazily: cluster must not import core.profiling at
        # module load (core.profiling.collector imports cluster).
        from ..core.profiling.latency import LatencyRecorder
        #: Latency of successful requests (ms); populated only when
        #: callers pass ``latency_ms`` to :meth:`record`.
        self.latency = LatencyRecorder()

    # -- recording -----------------------------------------------------------

    def record(self, outcome: str, at: Optional[float] = None,
               latency_ms: Optional[float] = None) -> None:
        if outcome not in self.OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}; "
                             f"expected one of {self.OUTCOMES}")
        when = self.sim.now if at is None else at
        self._samples.append((when, outcome))
        self.totals[outcome] += 1
        if latency_ms is not None:
            self.latency.record(latency_ms)
        if outcome != "success":
            if self._first_disruption is None:
                self._first_disruption = when
            self._last_disruption = when

    def record_success(self, latency_ms: Optional[float] = None) -> None:
        self.record("success", latency_ms=latency_ms)

    def record_failure(self) -> None:
        self.record("failure")

    def record_timeout(self) -> None:
        self.record("timeout")

    def record_rejected(self) -> None:
        self.record("rejected")

    def record_shed(self) -> None:
        self.record("shed")

    @property
    def issued(self) -> int:
        """Total attempts recorded, across all outcomes."""
        return len(self._samples)

    # -- queries -------------------------------------------------------------

    def counts_between(self, start_ms: float,
                       end_ms: float) -> Dict[str, int]:
        """Outcome counts over samples with ``start_ms <= t < end_ms``."""
        counts = {o: 0 for o in self.OUTCOMES}
        for when, outcome in self._samples:
            if start_ms <= when < end_ms:
                counts[outcome] += 1
        return counts

    def availability_between(self, start_ms: float, end_ms: float) -> float:
        """Fraction of requests in the interval that succeeded.

        An interval with no samples reports 1.0 — no request was denied.
        """
        counts = self.counts_between(start_ms, end_ms)
        total = sum(counts.values())
        if total == 0:
            return 1.0
        return counts["success"] / total

    def availability(self) -> float:
        """Lifetime success fraction (1.0 when nothing was recorded)."""
        total = sum(self.totals.values())
        if total == 0:
            return 1.0
        return self.totals["success"] / total

    def per_window(self) -> List[Tuple[float, Dict[str, int]]]:
        """(window start, outcome counts) for every non-empty window."""
        buckets: Dict[int, Dict[str, int]] = {}
        for when, outcome in self._samples:
            index = int(when // self.window_ms)
            counts = buckets.setdefault(index,
                                        {o: 0 for o in self.OUTCOMES})
            counts[outcome] += 1
        return [(index * self.window_ms, buckets[index])
                for index in sorted(buckets)]

    def recovery_time_ms(self) -> Optional[float]:
        """Span from the first to the last non-success outcome — how long
        the service was visibly degraded.  ``None`` if it never was."""
        if self._first_disruption is None:
            return None
        return self._last_disruption - self._first_disruption

    def latency_summary(self) -> Dict[str, object]:
        """p50/p95/p99/mean/max over recorded success latencies."""
        return self.latency.summary()

    def report(self) -> Dict[str, object]:
        """Outcome totals + availability + latency percentiles."""
        out: Dict[str, object] = dict(self.totals)
        out["issued"] = self.issued
        out["availability"] = self.availability()
        out["recovery_time_ms"] = self.recovery_time_ms()
        out["latency"] = self.latency_summary()
        return out

    def __len__(self) -> int:
        return len(self._samples)
