"""Rolling-window usage meters.

PLASMA's profiling runtime reports resource *percentages over the recent
past* (the elasticity period), not lifetime averages.  These meters
accumulate usage into fixed-width time buckets so that "CPU% over the last
N ms" is O(buckets) to answer and old history is forgotten automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim import Simulator

__all__ = ["WindowedMeter", "GaugeSeries", "AvailabilityMeter"]


class WindowedMeter:
    """Accumulates a quantity (busy-ms, bytes, message counts) into time
    buckets and answers windowed totals and rates.

    ``bucket_ms`` trades precision for memory; the default 500 ms is far
    finer than any elasticity period used in the paper (60–180 s).
    """

    def __init__(self, sim: Simulator, bucket_ms: float = 500.0,
                 keep_buckets: int = 720) -> None:
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        self._sim = sim
        self._bucket_ms = bucket_ms
        self._keep = keep_buckets
        self._buckets: List[Tuple[int, float]] = []  # (bucket index, total)
        self._lifetime = 0.0

    @property
    def lifetime_total(self) -> float:
        """Total accumulated since creation (never forgotten)."""
        return self._lifetime

    def add(self, amount: float, at: float = None) -> None:
        """Record ``amount`` at time ``at`` (default: now)."""
        when = self._sim.now if at is None else at
        index = int(when // self._bucket_ms)
        self._lifetime += amount
        if self._buckets and self._buckets[-1][0] == index:
            last_index, total = self._buckets[-1]
            self._buckets[-1] = (last_index, total + amount)
        else:
            self._buckets.append((index, amount))
            if len(self._buckets) > self._keep:
                del self._buckets[: len(self._buckets) - self._keep]

    def total(self, window_ms: float) -> float:
        """Sum recorded over the trailing ``window_ms``."""
        if window_ms <= 0:
            return 0.0
        cutoff = int((self._sim.now - window_ms) // self._bucket_ms)
        return sum(total for index, total in self._buckets
                   if index >= cutoff)

    def rate_per_ms(self, window_ms: float) -> float:
        """Average accumulation rate over the trailing window.

        The divisor is clamped to the elapsed simulation time so early
        queries (before one full window has passed) are not diluted.
        """
        effective = min(window_ms, self._sim.now) if self._sim.now > 0 else window_ms
        if effective <= 0:
            return 0.0
        return self.total(window_ms) / effective


class GaugeSeries:
    """A recorded time series of (time, value) samples.

    Used by the bench harness to capture CPU%, actor counts and latency
    curves that reproduce the paper's figures.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time_ms: float, value: float) -> None:
        self.samples.append((time_ms, value))

    def values(self) -> List[float]:
        return [value for _t, value in self.samples]

    def times(self) -> List[float]:
        return [t for t, _value in self.samples]

    def last(self) -> float:
        if not self.samples:
            raise ValueError(f"series {self.name!r} is empty")
        return self.samples[-1][1]

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(values) / len(values)

    def mean_between(self, start_ms: float, end_ms: float) -> float:
        window = [v for t, v in self.samples if start_ms <= t <= end_ms]
        if not window:
            raise ValueError(
                f"series {self.name!r} has no samples in "
                f"[{start_ms}, {end_ms}]")
        return sum(window) / len(window)

    def __len__(self) -> int:
        return len(self.samples)


class AvailabilityMeter:
    """Per-window request-outcome accounting for availability reporting.

    Clients (or any request source) record each request as ``success``,
    ``failure`` (error reply — typically the target actor is gone),
    ``timeout`` (no reply within the caller's deadline), ``rejected``
    (admission control turned it away with a retriable ``Overloaded``
    NACK), or ``shed`` (a bounded mailbox dropped it).  Outcomes are
    bucketed into fixed-width time windows so benchmarks can report
    availability *during* a fault window separately from availability
    after recovery, plus how long the disruption lasted.

    Accounting is conserved by construction: every recorded attempt is
    exactly one outcome, so ``sum(totals.values()) == issued``.
    """

    OUTCOMES = ("success", "failure", "timeout", "rejected", "shed")

    def __init__(self, sim: Simulator, window_ms: float = 5_000.0) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.sim = sim
        self.window_ms = window_ms
        self._samples: List[Tuple[float, str]] = []
        self.totals: Dict[str, int] = {o: 0 for o in self.OUTCOMES}
        self._first_disruption: Optional[float] = None
        self._last_disruption: Optional[float] = None

    # -- recording -----------------------------------------------------------

    def record(self, outcome: str, at: Optional[float] = None) -> None:
        if outcome not in self.OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}; "
                             f"expected one of {self.OUTCOMES}")
        when = self.sim.now if at is None else at
        self._samples.append((when, outcome))
        self.totals[outcome] += 1
        if outcome != "success":
            if self._first_disruption is None:
                self._first_disruption = when
            self._last_disruption = when

    def record_success(self) -> None:
        self.record("success")

    def record_failure(self) -> None:
        self.record("failure")

    def record_timeout(self) -> None:
        self.record("timeout")

    def record_rejected(self) -> None:
        self.record("rejected")

    def record_shed(self) -> None:
        self.record("shed")

    @property
    def issued(self) -> int:
        """Total attempts recorded, across all outcomes."""
        return len(self._samples)

    # -- queries -------------------------------------------------------------

    def counts_between(self, start_ms: float,
                       end_ms: float) -> Dict[str, int]:
        """Outcome counts over samples with ``start_ms <= t < end_ms``."""
        counts = {o: 0 for o in self.OUTCOMES}
        for when, outcome in self._samples:
            if start_ms <= when < end_ms:
                counts[outcome] += 1
        return counts

    def availability_between(self, start_ms: float, end_ms: float) -> float:
        """Fraction of requests in the interval that succeeded.

        An interval with no samples reports 1.0 — no request was denied.
        """
        counts = self.counts_between(start_ms, end_ms)
        total = sum(counts.values())
        if total == 0:
            return 1.0
        return counts["success"] / total

    def availability(self) -> float:
        """Lifetime success fraction (1.0 when nothing was recorded)."""
        total = sum(self.totals.values())
        if total == 0:
            return 1.0
        return self.totals["success"] / total

    def per_window(self) -> List[Tuple[float, Dict[str, int]]]:
        """(window start, outcome counts) for every non-empty window."""
        buckets: Dict[int, Dict[str, int]] = {}
        for when, outcome in self._samples:
            index = int(when // self.window_ms)
            counts = buckets.setdefault(index,
                                        {o: 0 for o in self.OUTCOMES})
            counts[outcome] += 1
        return [(index * self.window_ms, buckets[index])
                for index in sorted(buckets)]

    def recovery_time_ms(self) -> Optional[float]:
        """Span from the first to the last non-success outcome — how long
        the service was visibly degraded.  ``None`` if it never was."""
        if self._first_disruption is None:
            return None
        return self._last_disruption - self._first_disruption

    def __len__(self) -> int:
        return len(self._samples)
