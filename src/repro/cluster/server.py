"""Simulated server: vCPU cores, memory, and a NIC meter.

The CPU model is a per-server multi-core run queue.  Work arrives as jobs
declaring a CPU demand in milliseconds; each of the server's ``vcpus``
cores services jobs FIFO, scaled by the instance type's ``cpu_speed``.
This reproduces the contention behaviour elasticity management reacts to:
when offered load exceeds ``vcpus * cpu_speed`` CPU-ms per ms, queueing
delay grows and the windowed CPU utilization saturates near 100%.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..sim import Queue, Signal, Simulator, Timeout, spawn
from .instances import InstanceType
from .metrics import WindowedMeter

__all__ = ["Server", "CpuJob"]

_server_ids = itertools.count(1)


class CpuJob:
    """A unit of CPU work queued on a server.

    ``owner`` is an opaque tag (the actor, in practice) used by callers for
    accounting; the server itself only needs the demand.
    """

    __slots__ = ("demand_ms", "owner", "done")

    def __init__(self, sim: Simulator, demand_ms: float, owner: Any = None) -> None:
        self.demand_ms = demand_ms
        self.owner = owner
        self.done = Signal(sim)


class Server:
    """One simulated machine in the cluster.

    Public resource API:

    - :meth:`execute` — submit CPU work, returns a waitable.
    - :meth:`allocate_memory` / :meth:`free_memory`.
    - :meth:`cpu_percent`, :meth:`memory_percent`, :meth:`net_percent` —
      windowed utilization percentages, the signals PLASMA rules consume.
    """

    def __init__(self, sim: Simulator, itype: InstanceType,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.itype = itype
        self.server_id = next(_server_ids)
        self.name = name or f"{itype.name}-{self.server_id}"
        self.started_at = sim.now
        self.running = True
        #: Chaos "limping server" multiplier: effective core speed is
        #: ``itype.cpu_speed * speed_factor``.  1.0 = healthy.
        self.speed_factor = 1.0

        self._run_queue: Queue[CpuJob] = Queue(sim)
        self.cpu_meter = WindowedMeter(sim)
        self.net_meter = WindowedMeter(sim)
        self.memory_used_mb = 0.0
        self._cores = [
            spawn(sim, self._core_loop(), name=f"{self.name}/core{i}")
            for i in range(itype.vcpus)
        ]

    def __repr__(self) -> str:
        return f"<Server {self.name}>"

    # -- CPU ---------------------------------------------------------------

    def execute(self, demand_ms: float, owner: Any = None) -> Signal:
        """Submit ``demand_ms`` of CPU work; returns the completion signal.

        The signal's value is the *scaled* busy time the job occupied a
        core for, letting callers charge per-actor CPU accounting.
        """
        if demand_ms < 0:
            raise ValueError(f"negative CPU demand: {demand_ms!r}")
        job = CpuJob(self.sim, demand_ms, owner)
        self._run_queue.put(job)
        return job.done

    def _core_loop(self):
        while True:
            job = yield self._run_queue.get()
            if job is None:  # shutdown sentinel
                return
            scaled = job.demand_ms / (self.itype.cpu_speed
                                      * self.speed_factor)
            if scaled > 0:
                yield Timeout(self.sim, scaled)
            if self.running:
                self.cpu_meter.add(scaled)
            job.done.trigger(scaled)

    def run_queue_length(self) -> int:
        """Jobs waiting for a core (excludes jobs currently executing)."""
        return len(self._run_queue)

    # -- memory --------------------------------------------------------------

    def allocate_memory(self, mb: float) -> None:
        """Claim ``mb`` of memory.  Oversubscription is permitted (the paper's
        runtime does not kill actors on memory pressure) but shows up in
        :meth:`memory_percent` > 100, which memory rules can react to."""
        if mb < 0:
            raise ValueError(f"negative memory allocation: {mb!r}")
        self.memory_used_mb += mb

    def free_memory(self, mb: float) -> None:
        self.memory_used_mb = max(0.0, self.memory_used_mb - mb)

    # -- utilization percentages --------------------------------------------

    def _effective_window(self, window_ms: float) -> float:
        uptime = self.sim.now - self.started_at
        if uptime <= 0:
            return 0.0
        return min(window_ms, uptime)

    def cpu_percent(self, window_ms: float) -> float:
        """CPU utilization (0–100) over the trailing window."""
        effective = self._effective_window(window_ms)
        if effective <= 0:
            return 0.0
        capacity = effective * self.itype.vcpus
        return min(100.0, 100.0 * self.cpu_meter.total(window_ms) / capacity)

    def memory_percent(self, window_ms: float = 0.0) -> float:
        """Memory utilization (instantaneous; window kept for symmetry)."""
        return 100.0 * self.memory_used_mb / self.itype.memory_mb

    def net_percent(self, window_ms: float) -> float:
        """NIC utilization (0–100) over the trailing window."""
        effective = self._effective_window(window_ms)
        if effective <= 0:
            return 0.0
        capacity = effective * self.itype.net_bytes_per_ms()
        return min(100.0, 100.0 * self.net_meter.total(window_ms) / capacity)

    def idle_cpu_headroom(self, window_ms: float) -> float:
        """Unused CPU capacity, in CPU-ms per ms (used by admission checks)."""
        used_fraction = self.cpu_percent(window_ms) / 100.0
        return (1.0 - used_fraction) * self.itype.cpu_capacity_ms_per_ms()

    def set_speed_factor(self, factor: float) -> None:
        """Scale core speed (chaos "limping server" fault).  Applies to
        jobs dequeued from now on; a job already on a core finishes at
        the speed it started with."""
        if factor <= 0:
            raise ValueError(f"speed_factor must be positive: {factor!r}")
        self.speed_factor = factor

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the server's cores.  Queued work is abandoned."""
        if not self.running:
            return
        self.running = False
        for _ in self._cores:
            self._run_queue.put(None)  # type: ignore[arg-type]
