"""Simulated cloud instance type catalog.

The profiles mirror the AWS instance types used in the paper's evaluation.
Absolute magnitudes are simulation conventions; what matters for elasticity
decisions is the *relative* capacity between types (e.g. an m5.large has
two vCPUs, an m1.small one slow vCPU) because PLASMA's rules consume
resource percentages, not absolute throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["InstanceType", "INSTANCE_TYPES", "instance_type"]


@dataclass(frozen=True)
class InstanceType:
    """Resource profile for a server class.

    ``cpu_speed`` scales CPU demand: a job declaring 10 ms of work occupies
    a core for ``10 / cpu_speed`` ms.  ``net_mbps`` is NIC bandwidth,
    ``memory_mb`` the memory capacity used by `reserve`/memory rules.
    """

    name: str
    vcpus: int
    cpu_speed: float
    memory_mb: int
    net_mbps: float
    hourly_cost: float

    def cpu_capacity_ms_per_ms(self) -> float:
        """Total CPU-ms the server can execute per wall-clock ms."""
        return self.vcpus * self.cpu_speed

    def net_bytes_per_ms(self) -> float:
        """NIC throughput in bytes per millisecond."""
        return self.net_mbps * 1e6 / 8.0 / 1000.0


INSTANCE_TYPES: Dict[str, InstanceType] = {
    # First-generation instances used for the latency-oriented experiments.
    "m1.small": InstanceType(
        name="m1.small", vcpus=1, cpu_speed=0.5, memory_mb=1700,
        net_mbps=250.0, hourly_cost=0.044),
    "m1.medium": InstanceType(
        name="m1.medium", vcpus=1, cpu_speed=1.0, memory_mb=3750,
        net_mbps=500.0, hourly_cost=0.087),
    # The PageRank experiments use m5.large: 2 vCPU, 8 GB, 10 Gbps links.
    "m5.large": InstanceType(
        name="m5.large", vcpus=2, cpu_speed=1.0, memory_mb=8192,
        net_mbps=10000.0, hourly_cost=0.096),
    "m5.xlarge": InstanceType(
        name="m5.xlarge", vcpus=4, cpu_speed=1.0, memory_mb=16384,
        net_mbps=10000.0, hourly_cost=0.192),
}


def instance_type(name: str) -> InstanceType:
    """Look up an instance type by name, with a helpful error."""
    try:
        return INSTANCE_TYPES[name]
    except KeyError:
        known = ", ".join(sorted(INSTANCE_TYPES))
        raise KeyError(f"unknown instance type {name!r}; known: {known}")
