"""Server provisioning: the simulated AWS Instance Scheduler.

PLASMA's GEMs scale the cluster out/in by asking the provisioner for new
servers (which join after a boot delay, as EC2 instances do) or returning
idle ones.  The provisioner enforces a maximum fleet size and accounts the
cost of every server-ms consumed, which the benchmarks use to report the
paper's "same performance with 25% fewer resources" result.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim import Signal, Simulator
from .instances import InstanceType, instance_type
from .server import Server

__all__ = ["Provisioner"]


class Provisioner:
    """Boots and retires simulated servers.

    Parameters
    ----------
    boot_delay_ms:
        Time between a scale-out request and the server joining.  The
        paper provisions via the AWS Instance Scheduler; tens of seconds
        is realistic, and the figures' staircase shapes depend on this
        delay being non-trivial relative to the elasticity period.
    max_servers:
        Hard fleet cap (the Media Service experiment caps at 65).
    """

    def __init__(self, sim: Simulator, default_type: str = "m5.large",
                 boot_delay_ms: float = 30_000.0,
                 max_servers: int = 1024) -> None:
        self.sim = sim
        self.default_type = default_type
        self.boot_delay_ms = boot_delay_ms
        self.max_servers = max_servers
        self.servers: List[Server] = []
        self._retired: List[Server] = []
        self._pending_boots = 0
        self._join_listeners: List[Callable[[Server], None]] = []
        self._cost_accumulated = 0.0
        self._retired_server_ms = 0.0
        self._cost_marks: Dict[int, float] = {}

    # -- fleet membership --------------------------------------------------

    def add_join_listener(self, listener: Callable[[Server], None]) -> None:
        """Register a callback invoked whenever a server joins the fleet."""
        self._join_listeners.append(listener)

    def boot_server(self, type_name: Optional[str] = None,
                    immediate: bool = False) -> Signal:
        """Request a new server; returns a signal fired with the Server.

        ``immediate`` skips the boot delay (used to stand up the initial
        fleet before an experiment starts).
        """
        done = Signal(self.sim)
        if self.fleet_size() + self._pending_boots >= self.max_servers:
            done.trigger(None)  # fleet cap reached; caller must handle None
            return done
        itype = instance_type(type_name or self.default_type)
        self._pending_boots += 1
        delay = 0.0 if immediate else self.boot_delay_ms
        self.sim.schedule(delay, self._finish_boot, itype, done)
        return done

    def _finish_boot(self, itype: InstanceType, done: Signal) -> None:
        self._pending_boots -= 1
        server = Server(self.sim, itype)
        self.servers.append(server)
        self._cost_marks[server.server_id] = self.sim.now
        for listener in self._join_listeners:
            listener(server)
        done.trigger(server)

    def retire_server(self, server: Server) -> None:
        """Shut a server down and stop charging for it.

        Callers are responsible for migrating actors away first; the
        elasticity runtime never retires a non-empty server.
        """
        if server not in self.servers:
            raise ValueError(f"{server!r} is not part of this fleet")
        self.servers.remove(server)
        self._retired.append(server)
        started = self._cost_marks.pop(server.server_id, server.started_at)
        elapsed = self.sim.now - started
        self._retired_server_ms += elapsed
        self._cost_accumulated += (elapsed / 3_600_000.0) * server.itype.hourly_cost
        server.shutdown()

    # -- queries ---------------------------------------------------------------

    def fleet_size(self) -> int:
        return len(self.servers)

    def pending_boots(self) -> int:
        return self._pending_boots

    def total_vcpus(self) -> int:
        return sum(server.itype.vcpus for server in self.servers)

    def total_cost(self) -> float:
        """Accumulated cost in instance-hours * hourly rate, including
        currently running servers up to now."""
        running = 0.0
        for server in self.servers:
            started = self._cost_marks.get(server.server_id, server.started_at)
            running += ((self.sim.now - started) / 3_600_000.0
                        * server.itype.hourly_cost)
        return self._cost_accumulated + running

    def server_ms_consumed(self) -> float:
        """Total server-milliseconds consumed by the fleet so far."""
        total = self._retired_server_ms
        for server in self.servers:
            started = self._cost_marks.get(server.server_id, server.started_at)
            total += self.sim.now - started
        return total
