"""Simulated cloud substrate: instance types, servers, network, provisioning.

This package stands in for the Amazon EC2 deployment used in the paper.
See DESIGN.md §2 for the substitution rationale.
"""

from .groups import ServerGroupMap
from .instances import INSTANCE_TYPES, InstanceType, instance_type
from .metrics import (HAS_NUMPY, ArrayMeter, AvailabilityMeter,
                      GaugeSeries, WindowedMeter)
from .network import NetworkFabric
from .provisioner import Provisioner
from .server import CpuJob, Server

__all__ = [
    "InstanceType",
    "INSTANCE_TYPES",
    "instance_type",
    "Server",
    "ServerGroupMap",
    "CpuJob",
    "NetworkFabric",
    "Provisioner",
    "WindowedMeter",
    "ArrayMeter",
    "HAS_NUMPY",
    "GaugeSeries",
    "AvailabilityMeter",
]
