"""PLASMA reproduction: programmable elasticity for stateful cloud apps.

Reproduces Sang et al., "PLASMA: Programmable Elasticity for Stateful
Cloud Computing Applications" (EuroSys 2020) as a pure-Python library on
top of a deterministic discrete-event cloud simulation.

Quick start::

    from repro import (Simulator, Provisioner, ActorSystem, Actor, Client,
                       compile_source, ElasticityManager, EmrConfig)

See README.md and the examples/ directory.
"""

from .actors import (Actor, ActorRef, ActorSystem, Client, DeadLetter,
                     RuntimeHooks, describe_actor_class)
from .chaos import (ChaosEngine, CrashServer, DegradeNetwork, FaultPlan,
                    KillGem, SlowServer)
from .cluster import (INSTANCE_TYPES, ArrayMeter, AvailabilityMeter,
                      GaugeSeries, InstanceType, NetworkFabric, Provisioner,
                      Server, WindowedMeter, instance_type)
from .core import (CompiledPolicy, ElasticityManager, EmrConfig,
                   ProfilingRuntime, compile_policy, compile_source,
                   parse_policy)
from .core.profiling import LatencyRecorder
from .durability import DurabilityConfig, DurabilityManager, StateStore
from .live import (FrontDoor, LiveActor, LiveActorSystem, LiveBackend,
                   LiveClock, LiveElasticityManager, LiveServer)
from .runtime import RuntimeBackend, SimBackend
from .sim import (CalendarSimulator, HeapSimulator, RandomStreams, Signal,
                  Simulator, Timeout, spawn)

__version__ = "1.0.0"

__all__ = [
    "Actor", "ActorRef", "ActorSystem", "Client", "DeadLetter",
    "RuntimeHooks", "describe_actor_class",
    "ChaosEngine", "CrashServer", "DegradeNetwork", "FaultPlan", "KillGem",
    "SlowServer",
    "INSTANCE_TYPES", "AvailabilityMeter", "GaugeSeries", "InstanceType",
    "NetworkFabric", "Provisioner", "Server", "instance_type",
    "CompiledPolicy", "ElasticityManager", "EmrConfig", "ProfilingRuntime",
    "compile_policy", "compile_source", "parse_policy",
    "DurabilityConfig", "DurabilityManager", "StateStore",
    "RandomStreams", "Signal", "Simulator", "Timeout", "spawn",
    "CalendarSimulator", "HeapSimulator",
    "ArrayMeter", "WindowedMeter", "LatencyRecorder",
    "RuntimeBackend", "SimBackend",
    "LiveClock", "LiveServer", "LiveActor", "LiveActorSystem",
    "LiveBackend", "LiveElasticityManager", "FrontDoor",
    "__version__",
]
