"""Declarative fault plans.

A :class:`FaultPlan` is a validated, immutable list of faults with
virtual-time injection points.  Plans are data, not code: the same plan
object can be replayed against different seeds (or the same seed, for
deterministic reproduction of an incident) and serialized into test
parametrizations.

Fault types
-----------

- :class:`CrashServer` — fail-stop a server (its actors die with it);
  optionally boot a replacement after ``replace_after_ms``.
- :class:`KillGem` — stop a global elasticity manager from replying to
  REPORTs; optionally recover it later.
- :class:`KillRoot` — fail the hierarchical control plane's root tier
  (a no-op skip in flat mode); optionally recover it later.  A root
  that was superseded by a promotion in the meantime stays retired.
- :class:`DegradeNetwork` — multiply remote latencies and/or drop a
  fraction of remote messages for ``duration_ms``.
- :class:`SlowServer` — scale a server's effective CPU speed (a
  "limping" server) for ``duration_ms``.
- :class:`PartitionNetwork` — sever the links between a named group of
  servers (plus, optionally, a set of GEMs) and the rest of the fleet
  for ``duration_ms``; symmetric or asymmetric, absolute or lossy.
- :class:`EventStorm` — flood the fleet (or one server) with junk
  client calls at a fixed rate for ``duration_ms``.
- :class:`HotKeyFlood` — aim the same flood at a *single* actor (the
  hot key), picked deterministically by rank at injection time.

Server-targeting faults refer to servers by *index into the fleet as it
stood when the chaos engine started*, so a plan's meaning does not shift
when earlier faults add or remove servers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["CrashServer", "KillGem", "KillRoot", "DegradeNetwork",
           "SlowServer", "PartitionNetwork", "EventStorm", "HotKeyFlood",
           "FaultPlan", "Fault", "fault_to_dict", "fault_from_dict"]


@dataclass(frozen=True)
class CrashServer:
    """Fail-stop one server at ``at_ms``."""

    at_ms: float
    server_index: int = 0
    #: Boot a same-type replacement this long after the crash (``None``
    #: leaves the fleet permanently smaller).
    replace_after_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.server_index < 0:
            raise ValueError("server_index must be non-negative")
        if self.replace_after_ms is not None and self.replace_after_ms < 0:
            raise ValueError("replace_after_ms must be non-negative")


@dataclass(frozen=True)
class KillGem:
    """Stop GEM ``gem_id`` from replying to REPORTs at ``at_ms``.

    ``gem_id`` is the GEM's *stable id* (the ``GEM.gem_id`` attribute),
    not a position in ``manager.gems`` — ``respawn_gem`` appends to that
    list, so raw indices would let a replayed plan hit a different GEM
    than the one the plan was recorded against.
    """

    at_ms: float
    gem_id: int = 0
    recover_after_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.gem_id < 0:
            raise ValueError("gem_id must be non-negative")
        if self.recover_after_ms is not None and self.recover_after_ms <= 0:
            raise ValueError("recover_after_ms must be positive")


@dataclass(frozen=True)
class KillRoot:
    """Fail the hierarchical root tier at ``at_ms``.

    Only meaningful when ``EmrConfig.control_plane="hierarchical"``; the
    engine skips it (``fault-skipped``) in flat mode.  With
    ``recover_after_ms`` set the *same incarnation* recovers only if no
    leaf was promoted in the meantime — a superseded root must not
    regain authority (the ``root-single-authority`` invariant).
    """

    at_ms: float
    recover_after_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.recover_after_ms is not None and self.recover_after_ms <= 0:
            raise ValueError("recover_after_ms must be positive")


@dataclass(frozen=True)
class DegradeNetwork:
    """Degrade all remote traffic for ``duration_ms``."""

    at_ms: float
    duration_ms: float
    latency_multiplier: float = 1.0
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if self.latency_multiplier == 1.0 and self.drop_probability == 0.0:
            raise ValueError("a DegradeNetwork fault must degrade something")


@dataclass(frozen=True)
class SlowServer:
    """Run one server at ``speed_factor`` of nominal CPU speed."""

    at_ms: float
    duration_ms: float
    server_index: int = 0
    speed_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.server_index < 0:
            raise ValueError("server_index must be non-negative")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")


@dataclass(frozen=True)
class PartitionNetwork:
    """Partition ``group`` away from the rest of the fleet at ``at_ms``.

    ``group`` lists server indices (into the starting fleet, like
    :class:`CrashServer`); ``gems`` lists GEM ids stranded on the
    group's side of the cut.  Links within each side keep working.
    ``symmetric=False`` severs only traffic *from* the group outward
    (half-open failure); ``loss`` below 1.0 makes the cut lossy instead
    of absolute.  The partition heals after ``duration_ms``.
    """

    at_ms: float
    duration_ms: float
    group: Tuple[int, ...] = (0,)
    symmetric: bool = True
    gems: Tuple[int, ...] = ()
    loss: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(self.group))
        object.__setattr__(self, "gems", tuple(self.gems))
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if not self.group:
            raise ValueError("group must name at least one server index")
        if any(index < 0 for index in self.group):
            raise ValueError("group indices must be non-negative")
        if len(set(self.group)) != len(self.group):
            raise ValueError("group indices must be unique")
        if any(gem_id < 0 for gem_id in self.gems):
            raise ValueError("gem ids must be non-negative")
        if len(set(self.gems)) != len(self.gems):
            raise ValueError("gem ids must be unique")
        if not 0.0 < self.loss <= 1.0:
            raise ValueError("loss must be in (0, 1]")


@dataclass(frozen=True)
class EventStorm:
    """Flood the fleet with junk client calls for ``duration_ms``.

    Every storm call is a real client request to a random live actor's
    reserved ``storm_tick`` handler, burning ``cpu_ms`` of CPU — so
    storms exercise the full overload path: admission control,
    mailbox bounds, and the conservation ledger all see them.
    ``server_index`` (into the fleet at chaos start, like
    :class:`CrashServer`) narrows the flood to one server's actors;
    ``None`` storms the whole fleet.
    """

    at_ms: float
    duration_ms: float
    #: Storm calls per millisecond (aggregate, not per actor).
    rate_per_ms: float = 0.5
    #: CPU burned by each storm call on the target's server.
    cpu_ms: float = 1.0
    size_bytes: float = 512.0
    server_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.rate_per_ms <= 0:
            raise ValueError("rate_per_ms must be positive")
        if self.cpu_ms < 0:
            raise ValueError("cpu_ms must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.server_index is not None and self.server_index < 0:
            raise ValueError("server_index must be non-negative")


@dataclass(frozen=True)
class HotKeyFlood:
    """Aim an :class:`EventStorm`-style flood at one hot actor.

    The victim is chosen deterministically at injection time:
    ``actor_rank`` indexes into the live actors sorted by actor id
    (modulo the population, so a plan never misses).  This is the
    Elasticutor-style skew burst: one key absorbs the whole flood while
    its neighbours idle.
    """

    at_ms: float
    duration_ms: float
    rate_per_ms: float = 0.5
    cpu_ms: float = 1.0
    size_bytes: float = 512.0
    actor_rank: int = 0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.rate_per_ms <= 0:
            raise ValueError("rate_per_ms must be positive")
        if self.cpu_ms < 0:
            raise ValueError("cpu_ms must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.actor_rank < 0:
            raise ValueError("actor_rank must be non-negative")


Fault = Union[CrashServer, KillGem, KillRoot, DegradeNetwork, SlowServer,
              PartitionNetwork, EventStorm, HotKeyFlood]

_FAULT_TYPES = (CrashServer, KillGem, KillRoot, DegradeNetwork, SlowServer,
                PartitionNetwork, EventStorm, HotKeyFlood)

_FAULT_NAMES: Dict[str, type] = {
    "crash-server": CrashServer,
    "kill-gem": KillGem,
    "kill-root": KillRoot,
    "degrade-network": DegradeNetwork,
    "slow-server": SlowServer,
    "partition-network": PartitionNetwork,
    "event-storm": EventStorm,
    "hot-key-flood": HotKeyFlood,
}


def fault_to_dict(fault: Fault) -> Dict[str, Any]:
    """Serialize one fault to a JSON-able dict (``{"fault": name, ...}``).

    The inverse of :func:`fault_from_dict`; fuzz scenarios and replay
    artifacts store fault plans in this form.
    """
    for name, cls in _FAULT_NAMES.items():
        if isinstance(fault, cls):
            return {"fault": name, **asdict(fault)}
    raise TypeError(f"not a fault: {fault!r}")


def fault_from_dict(data: Dict[str, Any]) -> Fault:
    """Rebuild a fault from :func:`fault_to_dict` output.  Validation in
    ``__post_init__`` runs again, so a hand-edited artifact that names an
    impossible fault fails loudly instead of injecting garbage."""
    payload = dict(data)
    name = payload.pop("fault", None)
    cls = _FAULT_NAMES.get(name)
    if cls is None:
        raise ValueError(f"unknown fault kind {name!r}; "
                         f"expected one of {sorted(_FAULT_NAMES)}")
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown fields for {name!r}: {sorted(unknown)}")
    return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered set of faults to inject."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise TypeError(f"not a fault: {fault!r}")

    def ordered(self) -> List[Fault]:
        """Faults sorted by injection time (stable on ties)."""
        return sorted(self.faults, key=lambda fault: fault.at_ms)

    def to_jsonable(self) -> List[Dict[str, Any]]:
        """The plan as a list of JSON-able fault dicts."""
        return [fault_to_dict(fault) for fault in self.faults]

    @classmethod
    def from_jsonable(cls, data: List[Dict[str, Any]]) -> "FaultPlan":
        """Rebuild a plan serialized with :meth:`to_jsonable`."""
        return cls(faults=tuple(fault_from_dict(item) for item in data))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)
