"""Chaos engineering for the PLASMA reproduction.

Declarative fault plans (:class:`FaultPlan`) executed by a simulation
process (:class:`ChaosEngine`): fail-stop server crashes, GEM kills,
hierarchical root-tier kills (:class:`KillRoot`), transient network
degradation, per-link network partitions, limping (CPU-slowed) servers,
and load storms (:class:`EventStorm`, :class:`HotKeyFlood`) that flood
the data plane with real client calls — all deterministic under a fixed
seed so failures are exactly replayable.
"""

from .engine import ChaosEngine
from .plan import (CrashServer, DegradeNetwork, EventStorm, Fault, FaultPlan,
                   HotKeyFlood, KillGem, KillRoot, PartitionNetwork,
                   SlowServer, fault_from_dict, fault_to_dict)

__all__ = [
    "ChaosEngine",
    "CrashServer",
    "DegradeNetwork",
    "EventStorm",
    "Fault",
    "FaultPlan",
    "HotKeyFlood",
    "KillGem",
    "KillRoot",
    "PartitionNetwork",
    "SlowServer",
    "fault_from_dict",
    "fault_to_dict",
]
