"""The chaos engine: executes a :class:`FaultPlan` against a live system.

The engine is a simulation process.  It walks the plan in time order,
injects each fault through the public runtime surfaces (``crash_server``,
``GEM.fail``, ``RootGem.fail``, ``NetworkFabric.degrade``,
``NetworkFabric.partition``, ``Server.set_speed_factor``,
``ActorSystem.client_call`` for load storms) and
schedules the matching heal when the fault declares one.  Every injection
and heal is appended to :attr:`ChaosEngine.log` and — when an elasticity
manager is attached — emitted on its event bus as ``fault-injected`` /
``fault-healed`` events, so a tracer timeline interleaves faults with the
runtime's reactions to them.

Determinism: message-drop decisions draw from a dedicated named random
stream (``chaos-drops`` by default), so attaching the engine never
perturbs the placement or shuffling streams, and the same seed plus the
same plan replays the same run exactly.

Faults that cannot be applied (a server index beyond the starting fleet,
a crash target that is already down, a GEM id that does not exist) are
skipped and logged as ``fault-skipped`` rather than raising: a chaos run
should report what it could not do, not die halfway through the plan.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..actors import ActorSystem
from ..cluster import Server
from ..sim import Timeout, spawn
from .plan import (CrashServer, DegradeNetwork, EventStorm, Fault, FaultPlan,
                   HotKeyFlood, KillGem, KillRoot, PartitionNetwork,
                   SlowServer)

__all__ = ["ChaosEngine"]


class ChaosEngine:
    """Executes a :class:`FaultPlan` as a simulation process.

    Parameters
    ----------
    system:
        The actor system to torment.
    plan:
        The faults to inject.
    manager:
        Optional :class:`~repro.core.emr.ElasticityManager`; needed for
        :class:`KillGem` / :class:`KillRoot` faults and for emitting
        fault events on the EMR event bus (so tracers see them).
    rng:
        Random source for message-drop decisions.  Defaults to the
        system's dedicated ``chaos-drops`` stream.
    """

    def __init__(self, system: ActorSystem, plan: FaultPlan,
                 manager=None, rng: Optional[random.Random] = None) -> None:
        self.system = system
        self.plan = plan
        self.manager = manager
        self.rng = rng if rng is not None \
            else system.streams.stream("chaos-drops")
        self.log: List[Tuple[float, str, Dict[str, Any]]] = []
        self.faults_injected = 0
        self.faults_skipped = 0
        self._fleet: List[Server] = []
        self._process = None

    def start(self):
        """Snapshot the fleet and start executing the plan."""
        if self._process is not None:
            raise RuntimeError("chaos engine already started")
        self._fleet = list(self.system.provisioner.servers)
        self._process = spawn(self.system.sim, self._run(), name="chaos")
        return self._process

    # ------------------------------------------------------------------

    def _run(self):
        sim = self.system.sim
        for fault in self.plan.ordered():
            delay = fault.at_ms - sim.now
            if delay > 0:
                yield Timeout(sim, delay)
            self._inject(fault)

    def _inject(self, fault: Fault) -> None:
        if isinstance(fault, CrashServer):
            self._crash_server(fault)
        elif isinstance(fault, KillGem):
            self._kill_gem(fault)
        elif isinstance(fault, KillRoot):
            self._kill_root(fault)
        elif isinstance(fault, DegradeNetwork):
            self._degrade_network(fault)
        elif isinstance(fault, SlowServer):
            self._slow_server(fault)
        elif isinstance(fault, PartitionNetwork):
            self._partition_network(fault)
        elif isinstance(fault, EventStorm):
            self._event_storm(fault)
        elif isinstance(fault, HotKeyFlood):
            self._hot_key_flood(fault)

    # -- fault handlers --------------------------------------------------

    def _target_server(self, index: int, fault_name: str) -> Optional[Server]:
        if index >= len(self._fleet):
            self._skip(fault_name, reason="no-such-server", index=index)
            return None
        server = self._fleet[index]
        if not server.running:
            self._skip(fault_name, reason="server-already-down",
                       server=server.name)
            return None
        return server

    def _crash_server(self, fault: CrashServer) -> None:
        server = self._target_server(fault.server_index, "crash-server")
        if server is None:
            return
        lost = self.system.crash_server(server)
        self.faults_injected += 1
        self._emit("fault-injected", fault="crash-server",
                   server=server.name, lost_actors=len(lost))
        if fault.replace_after_ms is not None:
            self.system.sim.schedule(fault.replace_after_ms,
                                     self._boot_replacement, server)

    def _boot_replacement(self, crashed: Server) -> None:
        done = self.system.provisioner.boot_server(crashed.itype.name,
                                                   immediate=True)

        def booted(server: Optional[Server]) -> None:
            if server is None:
                self._skip("crash-server", reason="fleet-cap-reached",
                           replacing=crashed.name)
                return
            self._emit("fault-healed", fault="crash-server",
                       crashed=crashed.name, replacement=server.name)

        done._subscribe(booted)

    def _kill_gem(self, fault: KillGem) -> None:
        # GEMs are addressed by stable id, not list position: respawns
        # append to ``manager.gems``, so a raw index could make a
        # replayed plan hit a different GEM than the one recorded.
        gem = None
        if self.manager is not None:
            gem = next((g for g in self.manager.gems
                        if g.gem_id == fault.gem_id), None)
        if gem is None:
            self._skip("kill-gem", reason="no-such-gem", gem_id=fault.gem_id)
            return
        if gem.failed:
            self._skip("kill-gem", reason="gem-already-failed",
                       gem_id=fault.gem_id)
            return
        gem.fail()
        self.faults_injected += 1
        self._emit("fault-injected", fault="kill-gem", gem_id=gem.gem_id)
        if fault.recover_after_ms is not None:
            self.system.sim.schedule(fault.recover_after_ms,
                                     self._recover_gem, gem)

    def _recover_gem(self, gem) -> None:
        gem.recover()
        self._emit("fault-healed", fault="kill-gem", gem_id=gem.gem_id)

    def _kill_root(self, fault: KillRoot) -> None:
        hierarchy = getattr(self.manager, "hierarchy", None)
        if hierarchy is None:
            self._skip("kill-root", reason="no-hierarchy")
            return
        root = hierarchy.root
        if root.failed:
            self._skip("kill-root", reason="root-already-failed")
            return
        root.fail()
        self.faults_injected += 1
        self._emit("fault-injected", fault="kill-root",
                   generation=root.generation)
        if fault.recover_after_ms is not None:
            self.system.sim.schedule(fault.recover_after_ms,
                                     self._recover_root, root,
                                     root.generation)

    def _recover_root(self, root, generation: int) -> None:
        if root.generation != generation or not root.failed:
            # A leaf was promoted (or the detector respawned the root)
            # while this incarnation was down: it stays retired — a
            # superseded root must not regain authority.
            self._emit("fault-healed", fault="kill-root", superseded=True,
                       generation=root.generation)
            return
        root.recover()
        self._emit("fault-healed", fault="kill-root", superseded=False,
                   generation=root.generation)

    def _degrade_network(self, fault: DegradeNetwork) -> None:
        fabric = self.system.fabric
        token = fabric.degrade(
            latency_multiplier=fault.latency_multiplier,
            drop_probability=fault.drop_probability,
            rng=self.rng if fault.drop_probability > 0 else None)
        self.faults_injected += 1
        self._emit("fault-injected", fault="degrade-network",
                   latency_multiplier=fault.latency_multiplier,
                   drop_probability=fault.drop_probability,
                   duration_ms=fault.duration_ms)
        self.system.sim.schedule(fault.duration_ms, self._heal_network,
                                 token, fabric.messages_dropped)

    def _heal_network(self, token: int, drops_before: int) -> None:
        # Each degradation heals by its own token, so overlapping
        # DegradeNetwork windows compose (max latency multiplier,
        # independent drop draws) instead of clobbering each other.
        fabric = self.system.fabric
        fabric.heal(token)
        self._emit("fault-healed", fault="degrade-network",
                   messages_dropped=fabric.messages_dropped - drops_before)

    def _partition_network(self, fault: PartitionNetwork) -> None:
        fabric = self.system.fabric
        servers = []
        for index in fault.group:
            if index >= len(self._fleet):
                continue
            server = self._fleet[index]
            if server.running:
                servers.append(server)
        if not servers:
            self._skip("partition-network", reason="no-live-group-servers",
                       group=list(fault.group))
            return
        gem_ids = tuple(
            gem_id for gem_id in fault.gems
            if self.manager is not None and gem_id < len(self.manager.gems))
        server_ids = frozenset(server.server_id for server in servers)
        token = fabric.partition(
            server_ids, symmetric=fault.symmetric, loss=fault.loss,
            rng=self.rng if fault.loss < 1.0 else None)
        self.faults_injected += 1
        self._emit("fault-injected", fault="partition-network",
                   partition_id=token,
                   group=tuple(server.name for server in servers),
                   gems=gem_ids, symmetric=fault.symmetric, loss=fault.loss,
                   duration_ms=fault.duration_ms)
        if self.manager is not None:
            self.manager.note_partition(token, server_ids,
                                        frozenset(gem_ids), fault.symmetric)
        self.system.sim.schedule(fault.duration_ms, self._heal_partition,
                                 token, servers, fabric.partition_drops)

    def _heal_partition(self, token: int, servers: List[Server],
                        drops_before: int) -> None:
        fabric = self.system.fabric
        fabric.heal_partition(token)
        self._emit("fault-healed", fault="partition-network",
                   partition_id=token,
                   group=tuple(server.name for server in servers),
                   partition_drops=fabric.partition_drops - drops_before,
                   messages_dropped=fabric.messages_dropped)
        if self.manager is not None:
            self.manager.note_partition_healed(token)

    def _event_storm(self, fault: EventStorm) -> None:
        server = None
        if fault.server_index is not None:
            server = self._target_server(fault.server_index, "event-storm")
            if server is None:
                return
        self.faults_injected += 1
        self._emit("fault-injected", fault="event-storm",
                   rate_per_ms=fault.rate_per_ms, cpu_ms=fault.cpu_ms,
                   duration_ms=fault.duration_ms,
                   server=server.name if server is not None else None)
        spawn(self.system.sim,
              self._storm(fault, lambda: self._storm_target(server)),
              name="chaos-event-storm")

    def _hot_key_flood(self, fault: HotKeyFlood) -> None:
        victim = self._ranked_actor(fault.actor_rank)
        if victim is None:
            self._skip("hot-key-flood", reason="no-live-actors")
            return
        self.faults_injected += 1
        self._emit("fault-injected", fault="hot-key-flood",
                   rate_per_ms=fault.rate_per_ms, cpu_ms=fault.cpu_ms,
                   duration_ms=fault.duration_ms, victim=victim.actor_id)

        def target():
            # Re-pick by the same rank rule if the victim dies (crash or
            # scale-in) mid-flood, so the hot key stays hot.
            nonlocal victim
            if self.system.directory.try_lookup(victim.actor_id) is None:
                victim = self._ranked_actor(fault.actor_rank) or victim
            return victim

        spawn(self.system.sim, self._storm(fault, target),
              name="chaos-hot-key-flood")

    def _ranked_actor(self, rank: int):
        records = sorted(self.system.directory.records(),
                         key=lambda record: record.ref.actor_id)
        if not records:
            return None
        return records[rank % len(records)].ref

    def _storm_target(self, server: Optional[Server]):
        records = self.system.directory.on_server(server) \
            if server is not None else list(self.system.directory.records())
        if not records:
            return None
        records.sort(key=lambda record: record.ref.actor_id)
        return self.rng.choice(records).ref

    def _storm(self, fault, target):
        """Shared flood loop: fire ``storm_tick`` calls at ``rate_per_ms``
        until the window closes.  Replies are fire-and-forget; shed or
        rejected storm calls land in the overload ledger like any other
        client traffic."""
        sim = self.system.sim
        end = sim.now + fault.duration_ms
        interval = 1.0 / fault.rate_per_ms
        calls_sent = 0
        while sim.now < end:
            ref = target()
            if ref is not None:
                self.system.client_call(ref, "storm_tick", fault.cpu_ms,
                                        size_bytes=fault.size_bytes)
                calls_sent += 1
            yield Timeout(sim, interval)
        self._emit("fault-healed",
                   fault="event-storm" if isinstance(fault, EventStorm)
                   else "hot-key-flood",
                   calls_sent=calls_sent)

    def _slow_server(self, fault: SlowServer) -> None:
        server = self._target_server(fault.server_index, "slow-server")
        if server is None:
            return
        server.set_speed_factor(fault.speed_factor)
        self.faults_injected += 1
        self._emit("fault-injected", fault="slow-server", server=server.name,
                   speed_factor=fault.speed_factor,
                   duration_ms=fault.duration_ms)
        self.system.sim.schedule(fault.duration_ms,
                                 self._restore_speed, server)

    def _restore_speed(self, server: Server) -> None:
        if not server.running:
            return  # crashed while limping; nothing to restore
        server.set_speed_factor(1.0)
        self._emit("fault-healed", fault="slow-server", server=server.name)

    # -- bookkeeping -----------------------------------------------------

    def _emit(self, kind: str, **detail: Any) -> None:
        self.log.append((self.system.sim.now, kind, detail))
        if self.manager is not None:
            self.manager.emit(kind, **detail)

    def _skip(self, fault_name: str, **detail: Any) -> None:
        self.faults_skipped += 1
        self._emit("fault-skipped", fault=fault_name, **detail)
