"""AvailabilityMeter: windowed outcome accounting."""

import pytest

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.cluster import AvailabilityMeter
from repro.overload import OverloadConfig, OverloadManager
from repro.sim import Simulator, Timeout, spawn
from repro.workload import burst_windows


def test_rejects_bad_window_and_outcome():
    sim = Simulator()
    with pytest.raises(ValueError):
        AvailabilityMeter(sim, window_ms=0.0)
    meter = AvailabilityMeter(sim)
    with pytest.raises(ValueError):
        meter.record("dropped")


def test_lifetime_and_interval_availability():
    sim = Simulator()
    meter = AvailabilityMeter(sim, window_ms=1_000.0)
    assert meter.availability() == 1.0          # nothing recorded yet
    meter.record("success", at=100.0)
    meter.record("success", at=200.0)
    meter.record("timeout", at=1_100.0)
    meter.record("failure", at=1_200.0)
    meter.record("success", at=2_500.0)
    assert meter.availability() == pytest.approx(3 / 5)
    assert meter.availability_between(0.0, 1_000.0) == 1.0
    assert meter.availability_between(1_000.0, 2_000.0) == 0.0
    assert meter.availability_between(2_000.0, 3_000.0) == 1.0
    assert meter.availability_between(5_000.0, 6_000.0) == 1.0  # empty
    assert len(meter) == 5


def test_counts_use_half_open_intervals():
    sim = Simulator()
    meter = AvailabilityMeter(sim, window_ms=1_000.0)
    meter.record("success", at=1_000.0)
    assert meter.counts_between(0.0, 1_000.0)["success"] == 0
    assert meter.counts_between(1_000.0, 2_000.0)["success"] == 1


def test_per_window_buckets():
    sim = Simulator()
    meter = AvailabilityMeter(sim, window_ms=1_000.0)
    meter.record("success", at=100.0)
    meter.record("failure", at=1_500.0)
    meter.record("timeout", at=1_700.0)
    windows = meter.per_window()
    assert [start for start, _counts in windows] == [0.0, 1_000.0]
    assert windows[1][1] == {"success": 0, "failure": 1, "timeout": 1,
                             "rejected": 0, "shed": 0}


def test_recovery_time_spans_disruptions():
    sim = Simulator()
    meter = AvailabilityMeter(sim)
    assert meter.recovery_time_ms() is None
    meter.record("success", at=100.0)
    assert meter.recovery_time_ms() is None
    meter.record("timeout", at=2_000.0)
    meter.record("failure", at=7_500.0)
    meter.record("success", at=9_000.0)
    assert meter.recovery_time_ms() == pytest.approx(5_500.0)


class _Busy(Actor):
    def work(self):
        yield self.compute(30.0)
        return "ok"


@pytest.mark.parametrize("seed", [3, 17, 92])
def test_conservation_under_bursty_overloaded_schedule(seed):
    """Property: every issued attempt lands in exactly one outcome
    bucket, even when bursts drive the full overload machinery (shed
    mailboxes, admission rejects, timeouts) at once."""
    bed = build_cluster(1, seed=seed)
    bed.system.overload = OverloadManager(
        bed.system, OverloadConfig(mailbox_capacity=3, policy="shed",
                                   admission_queue_depth=2))
    ref = bed.system.create_actor(_Busy)
    meter = AvailabilityMeter(bed.sim, window_ms=1_000.0)
    windows = burst_windows(duration_ms=8_000.0, burst_ms=1_000.0,
                            idle_ms=1_500.0, think_ms=400.0,
                            burst_think_ms=1.0)
    clients = [Client(bed.system, name=f"burst{i}", timeout_ms=500.0,
                      max_retries=1, backoff_base_ms=50.0,
                      backoff_cap_ms=200.0, meter=meter)
               for i in range(4)]

    def loop(client):
        for start, end, think in windows:
            if bed.sim.now < start:
                yield Timeout(bed.sim, start - bed.sim.now)
            while bed.sim.now < end:
                yield from client.reliable_call(ref, "work")
                yield Timeout(bed.sim, think)

    for client in clients:
        spawn(bed.sim, loop(client))
    bed.run(until_ms=30_000.0)

    issued = sum(client.attempts for client in clients)
    assert issued > 0
    assert sum(meter.totals.values()) == issued
    # The bursts actually exercised the overload paths: some attempts
    # succeeded, some were turned away.
    assert meter.totals["success"] > 0
    assert meter.totals["rejected"] + meter.totals["shed"] > 0
    # The meter's view agrees with the data plane's disposition ledger.
    overload = bed.system.overload
    assert meter.totals["shed"] <= overload.total_shed()
    assert meter.totals["rejected"] == overload.counts["rejected"]
    per_window = meter.per_window()
    assert sum(sum(counts.values()) for _start, counts in per_window) \
        == issued


def test_latency_samples_feed_the_recorder():
    sim = Simulator()
    meter = AvailabilityMeter(sim)
    meter.record_success(latency_ms=10.0)
    meter.record_success(latency_ms=30.0)
    meter.record("timeout", at=500.0, latency_ms=500.0)
    meter.record_success()                       # no sample: count only
    assert meter.totals["success"] == 3
    assert meter.latency.count == 3              # only sampled outcomes
    summary = meter.latency_summary()
    assert summary["p50"] == 30.0
    assert summary["max_ms"] == 500.0
    report = meter.report()
    assert report["success"] == 3
    assert report["issued"] == 4
    assert report["latency"] == summary
    assert report["availability"] == pytest.approx(3 / 4)


def test_records_at_sim_now_by_default():
    sim = Simulator()
    meter = AvailabilityMeter(sim)
    sim.schedule(300.0, meter.record_timeout)
    sim.run(until=1_000.0)
    assert meter.counts_between(0.0, 1_000.0)["timeout"] == 1
    assert meter.recovery_time_ms() == 0.0
