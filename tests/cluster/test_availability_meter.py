"""AvailabilityMeter: windowed outcome accounting."""

import pytest

from repro.cluster import AvailabilityMeter
from repro.sim import Simulator


def test_rejects_bad_window_and_outcome():
    sim = Simulator()
    with pytest.raises(ValueError):
        AvailabilityMeter(sim, window_ms=0.0)
    meter = AvailabilityMeter(sim)
    with pytest.raises(ValueError):
        meter.record("dropped")


def test_lifetime_and_interval_availability():
    sim = Simulator()
    meter = AvailabilityMeter(sim, window_ms=1_000.0)
    assert meter.availability() == 1.0          # nothing recorded yet
    meter.record("success", at=100.0)
    meter.record("success", at=200.0)
    meter.record("timeout", at=1_100.0)
    meter.record("failure", at=1_200.0)
    meter.record("success", at=2_500.0)
    assert meter.availability() == pytest.approx(3 / 5)
    assert meter.availability_between(0.0, 1_000.0) == 1.0
    assert meter.availability_between(1_000.0, 2_000.0) == 0.0
    assert meter.availability_between(2_000.0, 3_000.0) == 1.0
    assert meter.availability_between(5_000.0, 6_000.0) == 1.0  # empty
    assert len(meter) == 5


def test_counts_use_half_open_intervals():
    sim = Simulator()
    meter = AvailabilityMeter(sim, window_ms=1_000.0)
    meter.record("success", at=1_000.0)
    assert meter.counts_between(0.0, 1_000.0)["success"] == 0
    assert meter.counts_between(1_000.0, 2_000.0)["success"] == 1


def test_per_window_buckets():
    sim = Simulator()
    meter = AvailabilityMeter(sim, window_ms=1_000.0)
    meter.record("success", at=100.0)
    meter.record("failure", at=1_500.0)
    meter.record("timeout", at=1_700.0)
    windows = meter.per_window()
    assert [start for start, _counts in windows] == [0.0, 1_000.0]
    assert windows[1][1] == {"success": 0, "failure": 1, "timeout": 1}


def test_recovery_time_spans_disruptions():
    sim = Simulator()
    meter = AvailabilityMeter(sim)
    assert meter.recovery_time_ms() is None
    meter.record("success", at=100.0)
    assert meter.recovery_time_ms() is None
    meter.record("timeout", at=2_000.0)
    meter.record("failure", at=7_500.0)
    meter.record("success", at=9_000.0)
    assert meter.recovery_time_ms() == pytest.approx(5_500.0)


def test_records_at_sim_now_by_default():
    sim = Simulator()
    meter = AvailabilityMeter(sim)
    sim.schedule(300.0, meter.record_timeout)
    sim.run(until=1_000.0)
    assert meter.counts_between(0.0, 1_000.0)["timeout"] == 1
    assert meter.recovery_time_ms() == 0.0
