"""Unit tests for windowed meters and gauge series."""

import pytest

from repro.cluster import GaugeSeries, WindowedMeter
from repro.sim import Simulator


def advance(sim, to):
    sim.schedule_at(to, lambda: None)
    sim.run()


def test_total_within_window():
    sim = Simulator()
    meter = WindowedMeter(sim, bucket_ms=100.0)
    meter.add(5.0)
    advance(sim, 50.0)
    meter.add(7.0)
    assert meter.total(1_000.0) == 12.0


def test_old_entries_fall_out_of_window():
    sim = Simulator()
    meter = WindowedMeter(sim, bucket_ms=100.0)
    meter.add(5.0)
    advance(sim, 5_000.0)
    meter.add(2.0)
    assert meter.total(1_000.0) == 2.0
    assert meter.lifetime_total == 7.0


def test_rate_clamps_to_elapsed_time():
    sim = Simulator()
    meter = WindowedMeter(sim, bucket_ms=100.0)
    advance(sim, 200.0)
    meter.add(100.0)
    # Only 200 ms elapsed; the 60 s window must not dilute the rate.
    assert meter.rate_per_ms(60_000.0) == pytest.approx(0.5)


def test_bucket_eviction_bounds_memory():
    sim = Simulator()
    meter = WindowedMeter(sim, bucket_ms=10.0, keep_buckets=5)
    for step in range(50):
        advance(sim, (step + 1) * 10.0)
        meter.add(1.0)
    assert len(meter._buckets) <= 5
    assert meter.lifetime_total == 50.0


def test_invalid_bucket_size_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        WindowedMeter(sim, bucket_ms=0.0)


def test_gauge_series_statistics():
    series = GaugeSeries("x")
    for t, v in [(0.0, 1.0), (10.0, 3.0), (20.0, 5.0)]:
        series.record(t, v)
    assert series.last() == 5.0
    assert series.mean() == 3.0
    assert series.mean_between(5.0, 25.0) == 4.0
    assert series.values() == [1.0, 3.0, 5.0]
    assert series.times() == [0.0, 10.0, 20.0]
    assert len(series) == 3


def test_gauge_series_empty_raises():
    series = GaugeSeries("empty")
    with pytest.raises(ValueError):
        series.last()
    with pytest.raises(ValueError):
        series.mean()
    series.record(1.0, 1.0)
    with pytest.raises(ValueError):
        series.mean_between(100.0, 200.0)
