"""Unit tests for the simulated server (CPU, memory, utilization)."""

import pytest

from repro.cluster import Server, instance_type
from repro.sim import Simulator, spawn


def make_server(sim, type_name="m5.large"):
    return Server(sim, instance_type(type_name))


def test_execute_completes_after_scaled_demand():
    sim = Simulator()
    server = make_server(sim, "m1.small")  # cpu_speed 0.5
    seen = []

    def body():
        busy = yield server.execute(10.0)
        seen.append((sim.now, busy))

    spawn(sim, body())
    sim.run()
    assert seen == [(20.0, 20.0)]  # 10 ms demand at half speed


def test_cores_run_in_parallel():
    sim = Simulator()
    server = make_server(sim, "m5.large")  # 2 vCPUs
    done_times = []

    def submit():
        signals = [server.execute(10.0) for _ in range(2)]
        for signal in signals:
            yield signal
        done_times.append(sim.now)

    spawn(sim, submit())
    sim.run()
    assert done_times == [10.0]  # both jobs finish together on 2 cores


def test_queueing_when_offered_load_exceeds_cores():
    sim = Simulator()
    server = make_server(sim, "m5.large")
    finish = []

    def submit():
        signals = [server.execute(10.0) for _ in range(4)]
        for signal in signals:
            yield signal
        finish.append(sim.now)

    spawn(sim, submit())
    sim.run()
    assert finish == [20.0]  # 4 x 10ms over 2 cores = 20ms makespan


def test_cpu_percent_reflects_busy_fraction():
    sim = Simulator()
    server = make_server(sim, "m5.large")
    server.execute(10.0)
    sim.run(until=100.0)
    # 10 busy-ms over a 100 ms window with 2 cores = 5%.
    assert server.cpu_percent(100.0) == pytest.approx(5.0, abs=0.5)


def test_cpu_percent_zero_before_any_time_passes():
    sim = Simulator()
    server = make_server(sim)
    assert server.cpu_percent(1_000.0) == 0.0


def test_memory_accounting():
    sim = Simulator()
    server = make_server(sim, "m5.large")  # 8192 MB
    server.allocate_memory(2048.0)
    assert server.memory_percent() == pytest.approx(25.0)
    server.free_memory(1024.0)
    assert server.memory_percent() == pytest.approx(12.5)
    server.free_memory(10_000.0)  # clamps at zero
    assert server.memory_percent() == 0.0


def test_negative_demand_and_memory_rejected():
    sim = Simulator()
    server = make_server(sim)
    with pytest.raises(ValueError):
        server.execute(-1.0)
    with pytest.raises(ValueError):
        server.allocate_memory(-1.0)


def test_net_percent_uses_nic_capacity():
    sim = Simulator()
    server = make_server(sim, "m1.small")  # 250 Mbps
    per_ms = server.itype.net_bytes_per_ms()
    server.net_meter.add(per_ms * 50.0)  # 50 ms worth of line rate
    sim.schedule_at(100.0, lambda: None)
    sim.run()
    assert server.net_percent(100.0) == pytest.approx(50.0, abs=1.0)


def test_shutdown_stops_cores():
    sim = Simulator()
    server = make_server(sim)
    server.shutdown()
    assert not server.running
    server.shutdown()  # idempotent
    sim.run()
    # Work submitted after shutdown is never serviced.
    done = server.execute(1.0)
    sim.run()
    assert not done.triggered


def test_run_queue_length_counts_waiting_jobs():
    sim = Simulator()
    server = make_server(sim, "m5.large")
    for _ in range(5):
        server.execute(100.0)
    sim.run(until=1.0)
    # 2 jobs on cores, 3 waiting.
    assert server.run_queue_length() == 3


def test_idle_headroom():
    sim = Simulator()
    server = make_server(sim, "m5.large")
    assert server.idle_cpu_headroom(1_000.0) == pytest.approx(2.0)
