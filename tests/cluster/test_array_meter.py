"""ArrayMeter: numpy-batched windowed accumulation, bit-identical to the
scalar meters.

The profiling equivalence chain (``WindowedMeter`` == ``RingMeter`` ==
byte-identical decision traces) only extends to the numpy backend if
``ArrayMeter`` reproduces the same floats, including the association
order of every sum.  These tests brute-force that claim against an
independent model and against the scalar meters, over randomized and
hypothesis-generated event streams, with interleaved queries (each query
flushes the pending batch, so interleaving exercises the open-bucket
continuation path) and the window-edge boundary bucket.
"""

import random

import pytest

from repro.cluster import HAS_NUMPY, ArrayMeter, WindowedMeter
from repro.core.profiling import RingMeter

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")

BUCKET_MS = 500.0
WINDOW_MS = 60_000.0


class FakeSim:
    """Just a clock; the meters only read ``now``."""

    def __init__(self) -> None:
        self.now = 0.0


def brute_force_total(events, now, window_ms, bucket_ms=BUCKET_MS):
    """Independent model of the meters' windowed total.

    Replays WindowedMeter's bucketization (append-or-merge in arrival
    order) and sums the surviving buckets oldest-first — the association
    every meter implementation must reproduce exactly.
    """
    buckets = []  # [index, total]
    for when, amount in events:
        index = int(when // bucket_ms)
        if buckets and buckets[-1][0] == index:
            buckets[-1][1] += amount
        else:
            buckets.append([index, amount])
    if window_ms <= 0:
        return 0.0
    cutoff = int((now - window_ms) // bucket_ms)
    result = 0.0
    for index, total in buckets:
        if index >= cutoff:
            result += total
    return result


def test_monotone_streams_match_all_backends():
    for seed in range(20):
        rng = random.Random(seed)
        sim = FakeSim()
        meters = (WindowedMeter(sim, bucket_ms=BUCKET_MS),
                  RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS),
                  ArrayMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS))
        events = []
        for _ in range(1_500):
            sim.now += rng.expovariate(1 / 300.0)
            amount = rng.uniform(0.0, 7.0)
            events.append((sim.now, amount))
            for meter in meters:
                meter.add(amount)
            if rng.random() < 0.08:
                window = rng.choice([WINDOW_MS, 20_000.0, 750.0, 0.0])
                expected = brute_force_total(events, sim.now, window)
                for meter in meters:
                    assert meter.total(window) == expected, (seed, window)
        assert len({m.lifetime_total for m in meters}) == 1


def test_out_of_order_at_matches_ring_meter():
    # Explicit out-of-order `at=` leaves WindowedMeter's retention model
    # (it can revisit expired indices); the contract that matters is that
    # the batched flush replays RingMeter's sequential semantics exactly.
    for seed in range(20):
        rng = random.Random(1_000 + seed)
        sim = FakeSim()
        ring = RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS)
        array = ArrayMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS)
        for _ in range(1_500):
            sim.now += rng.expovariate(1 / 300.0)
            amount = rng.uniform(0.0, 7.0)
            at = (sim.now - rng.uniform(0.0, 5_000.0)
                  if rng.random() < 0.25 else None)
            ring.add(amount, at)
            array.add(amount, at)
            if rng.random() < 0.08:
                window = rng.choice([WINDOW_MS, 20_000.0, 499.0])
                assert ring.total(window) == array.total(window)
        assert ring.lifetime_total == array.lifetime_total


def test_window_edge_boundary_bucket_is_clamped_identically():
    """The partially expired boundary bucket (index == cutoff) counts;
    anything older is gone — the exact clamping rule whose absence
    caused the actor-cpu-overcount corpus bug."""
    sim = FakeSim()
    meters = (WindowedMeter(sim, bucket_ms=BUCKET_MS),
              RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS),
              ArrayMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS))
    for when in (0.0, 100.0, BUCKET_MS, WINDOW_MS - BUCKET_MS):
        sim.now = when
        for meter in meters:
            meter.add(1.0)
    # Just inside: every bucket still in the window.
    sim.now = WINDOW_MS - 1.0
    assert [m.total(WINDOW_MS) for m in meters] == [4.0] * 3
    # One bucket past the edge: the two adds in bucket 0 fall below the
    # cutoff together; the boundary bucket itself still counts.
    sim.now = WINDOW_MS + BUCKET_MS
    assert [m.total(WINDOW_MS) for m in meters] == [2.0] * 3
    # Rate divisor clamps to elapsed time before one full window passed.
    sim2 = FakeSim()
    array = ArrayMeter(sim2, WINDOW_MS)
    sim2.now = 1_000.0
    array.add(5.0)
    assert array.rate_per_ms(WINDOW_MS) == 5.0 / 1_000.0


def test_flush_continues_open_bucket_sequentially():
    # Adds split across flushes into the *same* bucket must accumulate
    # with per-add association: old + a1 + a2, never old + (a1 + a2).
    sim = FakeSim()
    ring = RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS)
    array = ArrayMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS)
    amounts = [0.1, 0.2, 0.7, 1e-9, 3.3, 0.001]
    for position, amount in enumerate(amounts):
        sim.now = 10.0 + position  # all within bucket 0
        ring.add(amount)
        array.add(amount)
        assert array.total() == ring.total()  # flush after every add


def test_empty_and_zero_window_queries():
    sim = FakeSim()
    array = ArrayMeter(sim, WINDOW_MS)
    assert array.total() == 0.0
    assert array.total(0.0) == 0.0
    assert array.rate_per_ms() == 0.0
    array.add(2.0)
    assert array.total(0.0) == 0.0
    assert array.total() == 2.0


def test_constructor_validation():
    sim = FakeSim()
    with pytest.raises(ValueError):
        ArrayMeter(sim, WINDOW_MS, bucket_ms=0.0)
    with pytest.raises(ValueError):
        ArrayMeter(sim, -1.0)


def test_actor_stats_backend_knob():
    from repro.core.profiling import ActorStats
    sim = FakeSim()
    stats = ActorStats(sim, backend="array")
    assert isinstance(stats.cpu, ArrayMeter)
    stats.record_message("client", None, "read", 128.0)
    assert isinstance(stats.call_counts[("client", "read")], ArrayMeter)
    assert isinstance(ActorStats(sim).cpu, RingMeter)
    assert isinstance(ActorStats(sim, use_ring=False).cpu, WindowedMeter)
    with pytest.raises(ValueError):
        ActorStats(sim, backend="bloom-filter")


if HAVE_HYPOTHESIS:

    @given(st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=5_000.0,
                            allow_nan=False),
                  st.floats(min_value=-100.0, max_value=100.0,
                            allow_nan=False),
                  st.booleans()),
        min_size=1, max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_property_totals_bit_identical(steps):
        """For arbitrary monotone streams with interleaved queries, all
        three meter backends return bit-identical totals that match the
        independent brute-force model."""
        sim = FakeSim()
        meters = (WindowedMeter(sim, bucket_ms=BUCKET_MS),
                  RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS),
                  ArrayMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS))
        events = []
        for gap, amount, query in steps:
            sim.now += gap
            events.append((sim.now, amount))
            for meter in meters:
                meter.add(amount)
            if query:
                expected = brute_force_total(events, sim.now, WINDOW_MS)
                totals = [meter.total(WINDOW_MS) for meter in meters]
                assert totals == [expected] * 3
