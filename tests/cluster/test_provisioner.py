"""Unit tests for the server provisioner."""

import pytest

from repro.cluster import Provisioner
from repro.sim import Simulator


def test_immediate_boot_joins_at_once():
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    done = prov.boot_server(immediate=True)
    sim.run()
    assert prov.fleet_size() == 1
    assert done.value is prov.servers[0]


def test_boot_respects_delay():
    sim = Simulator()
    prov = Provisioner(sim, boot_delay_ms=30_000.0)
    prov.boot_server()
    sim.run(until=29_999.0)
    assert prov.fleet_size() == 0
    assert prov.pending_boots() == 1
    sim.run(until=30_001.0)
    assert prov.fleet_size() == 1
    assert prov.pending_boots() == 0


def test_fleet_cap_returns_none():
    sim = Simulator()
    prov = Provisioner(sim, max_servers=2)
    prov.boot_server(immediate=True)
    prov.boot_server(immediate=True)
    sim.run()
    refused = prov.boot_server(immediate=True)
    sim.run()
    assert refused.value is None
    assert prov.fleet_size() == 2


def test_pending_boots_count_toward_cap():
    sim = Simulator()
    prov = Provisioner(sim, max_servers=1, boot_delay_ms=10.0)
    prov.boot_server()
    refused = prov.boot_server()
    sim.run()
    assert refused.value is None
    assert prov.fleet_size() == 1


def test_join_listener_invoked():
    sim = Simulator()
    prov = Provisioner(sim)
    joined = []
    prov.add_join_listener(joined.append)
    prov.boot_server(immediate=True)
    sim.run()
    assert joined == prov.servers


def test_retire_removes_and_shuts_down():
    sim = Simulator()
    prov = Provisioner(sim)
    prov.boot_server(immediate=True)
    sim.run()
    server = prov.servers[0]
    prov.retire_server(server)
    assert prov.fleet_size() == 0
    assert not server.running


def test_retire_unknown_server_rejected():
    sim = Simulator()
    prov = Provisioner(sim)
    prov.boot_server(immediate=True)
    sim.run()
    server = prov.servers[0]
    prov.retire_server(server)
    with pytest.raises(ValueError):
        prov.retire_server(server)


def test_boot_type_override():
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    prov.boot_server("m1.small", immediate=True)
    sim.run()
    assert prov.servers[0].itype.name == "m1.small"


def test_cost_and_server_ms_accounting():
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    prov.boot_server(immediate=True)
    prov.boot_server(immediate=True)
    sim.run(until=3_600_000.0)  # one hour
    assert prov.server_ms_consumed() == pytest.approx(2 * 3_600_000.0)
    assert prov.total_cost() == pytest.approx(2 * 0.096, rel=1e-6)
    # Retiring freezes a server's cost.
    prov.retire_server(prov.servers[0])
    sim.run(until=7_200_000.0)
    assert prov.server_ms_consumed() == pytest.approx(3 * 3_600_000.0)
    assert prov.total_cost() == pytest.approx(3 * 0.096, rel=1e-6)


def test_total_vcpus():
    sim = Simulator()
    prov = Provisioner(sim)
    prov.boot_server("m5.large", immediate=True)
    prov.boot_server("m1.small", immediate=True)
    sim.run()
    assert prov.total_vcpus() == 3
