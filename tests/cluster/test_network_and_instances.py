"""Unit tests for the network fabric and the instance-type catalog."""

import random

import pytest

from repro.cluster import (INSTANCE_TYPES, NetworkFabric, Server,
                           instance_type)
from repro.sim import Simulator


def test_catalog_contains_paper_types():
    for name in ("m1.small", "m1.medium", "m5.large"):
        itype = instance_type(name)
        assert itype.vcpus >= 1
        assert itype.memory_mb > 0


def test_unknown_type_raises_with_suggestions():
    with pytest.raises(KeyError) as excinfo:
        instance_type("t2.nano")
    assert "m5.large" in str(excinfo.value)


def test_relative_capacities_match_paper():
    small = instance_type("m1.small")
    medium = instance_type("m1.medium")
    large = instance_type("m5.large")
    assert small.cpu_capacity_ms_per_ms() < medium.cpu_capacity_ms_per_ms()
    assert large.vcpus == 2
    assert large.net_mbps == 10_000.0


def test_local_delivery_is_cheap_and_unmetered():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    server = Server(sim, instance_type("m5.large"))
    delay = fabric.delivery_delay(server, server, 1_000_000.0)
    assert delay == fabric.local_latency_ms
    assert server.net_meter.lifetime_total == 0.0


def test_remote_delivery_pays_rtt_and_serialization():
    sim = Simulator()
    fabric = NetworkFabric(sim, remote_rtt_ms=2.0)
    a = Server(sim, instance_type("m5.large"))
    b = Server(sim, instance_type("m5.large"))
    size = 1_250_000.0  # 1 ms at 10 Gbps
    delay = fabric.delivery_delay(a, b, size)
    assert delay == pytest.approx(1.0 + 1.0)  # rtt/2 + serialization
    assert a.net_meter.lifetime_total == size
    assert b.net_meter.lifetime_total == size


def test_remote_delivery_limited_by_slower_nic():
    sim = Simulator()
    fabric = NetworkFabric(sim, remote_rtt_ms=0.0)
    fast = Server(sim, instance_type("m5.large"))
    slow = Server(sim, instance_type("m1.small"))
    size = slow.itype.net_bytes_per_ms() * 10.0
    assert fabric.delivery_delay(fast, slow, size) == pytest.approx(10.0)


def test_client_delivery_charges_only_the_server():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    server = Server(sim, instance_type("m5.large"))
    fabric.delivery_delay(None, server, 1_000.0)
    assert server.net_meter.lifetime_total == 1_000.0


def test_bulk_transfer_pays_full_rtt():
    sim = Simulator()
    fabric = NetworkFabric(sim, remote_rtt_ms=2.0)
    a = Server(sim, instance_type("m5.large"))
    b = Server(sim, instance_type("m5.large"))
    size = 1_250_000.0
    assert fabric.transfer_delay(a, b, size) == pytest.approx(2.0 + 1.0)
    assert fabric.transfer_delay(a, a, size) == fabric.local_latency_ms


# -- partitions --------------------------------------------------------


def _three_servers():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    servers = [Server(sim, instance_type("m5.large")) for _ in range(3)]
    return fabric, servers


def test_symmetric_partition_severs_both_directions():
    fabric, (a, b, c) = _three_servers()
    token = fabric.partition({a.server_id})
    assert fabric.partitioned
    assert fabric.link_blocked(a, b) and fabric.link_blocked(b, a)
    assert fabric.drop_message(a, b) and fabric.drop_message(b, a)
    # Links within a side keep working.
    assert not fabric.link_blocked(b, c)
    assert not fabric.drop_message(b, c)
    fabric.heal_partition(token)
    assert not fabric.partitioned
    assert not fabric.link_blocked(a, b)
    assert not fabric.drop_message(a, b)


def test_asymmetric_partition_severs_group_outward_only():
    fabric, (a, b, _c) = _three_servers()
    fabric.partition({a.server_id}, symmetric=False)
    assert fabric.link_blocked(a, b)
    assert not fabric.link_blocked(b, a)
    assert fabric.drop_message(a, b)
    assert not fabric.drop_message(b, a)


def test_clients_are_never_partitioned():
    fabric, (a, _b, _c) = _three_servers()
    fabric.partition({a.server_id})
    assert not fabric.drop_message(None, a)
    assert not fabric.drop_message(a, None)


def test_partition_drop_counters_track_links():
    fabric, (a, b, c) = _three_servers()
    fabric.partition({a.server_id})
    fabric.drop_message(a, b)
    fabric.drop_message(a, b)
    fabric.drop_message(a, c)
    assert fabric.messages_dropped == 3
    assert fabric.partition_drops == 3
    assert fabric.drops_by_link == {(a.name, b.name): 2,
                                    (a.name, c.name): 1}


def test_full_loss_partition_consumes_no_rng():
    fabric, (a, b, _c) = _three_servers()
    fabric.partition({a.server_id})  # no rng passed, none needed
    assert fabric.drop_message(a, b)


def test_lossy_partition_requires_rng_and_does_not_block_links():
    fabric, (a, b, _c) = _three_servers()
    with pytest.raises(ValueError, match="requires an rng"):
        fabric.partition({a.server_id}, loss=0.5)
    fabric.partition({a.server_id}, loss=0.5, rng=random.Random(1))
    # A lossy cut never *blocks* a link — messages may get through.
    assert not fabric.link_blocked(a, b)
    outcomes = {fabric.drop_message(a, b) for _ in range(200)}
    assert outcomes == {True, False}
    assert fabric.partition_drops > 0


@pytest.mark.parametrize("loss", [0.0, -0.1, 1.5])
def test_partition_rejects_bad_loss(loss):
    fabric, (a, _b, _c) = _three_servers()
    with pytest.raises(ValueError):
        fabric.partition({a.server_id}, loss=loss,
                         rng=random.Random(1))


def test_partition_rejects_empty_group():
    fabric, _servers = _three_servers()
    with pytest.raises(ValueError, match="non-empty"):
        fabric.partition(set())


def test_overlapping_degradations_compose():
    fabric, (a, b, _c) = _three_servers()
    t1 = fabric.degrade(latency_multiplier=2.0)
    t2 = fabric.degrade(latency_multiplier=4.0)
    assert fabric.latency_multiplier == 4.0
    fabric.heal(t2)
    assert fabric.latency_multiplier == 2.0
    fabric.heal(t1)
    assert fabric.latency_multiplier == 1.0
    rng = random.Random(7)
    fabric.degrade(drop_probability=0.5, rng=rng)
    fabric.degrade(drop_probability=0.5, rng=rng)
    assert fabric.drop_probability == pytest.approx(0.75)
    fabric.heal()  # no token: lift everything
    assert not fabric.degraded
    assert not fabric.drop_message(a, b)


def test_degradation_and_partition_compose():
    fabric, (a, b, c) = _three_servers()
    rng = random.Random(3)
    fabric.degrade(drop_probability=1.0, rng=rng)
    token = fabric.partition({a.server_id})
    # The cut drops cross-link traffic, the degradation everything else.
    assert fabric.drop_message(a, b)
    assert fabric.partition_drops == 1
    assert fabric.drop_message(b, c)
    assert fabric.messages_dropped == 2
    fabric.heal_partition(token)
    assert fabric.drop_message(a, b)  # degradation still active
    assert fabric.partition_drops == 1
