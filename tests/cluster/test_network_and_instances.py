"""Unit tests for the network fabric and the instance-type catalog."""

import pytest

from repro.cluster import (INSTANCE_TYPES, NetworkFabric, Server,
                           instance_type)
from repro.sim import Simulator


def test_catalog_contains_paper_types():
    for name in ("m1.small", "m1.medium", "m5.large"):
        itype = instance_type(name)
        assert itype.vcpus >= 1
        assert itype.memory_mb > 0


def test_unknown_type_raises_with_suggestions():
    with pytest.raises(KeyError) as excinfo:
        instance_type("t2.nano")
    assert "m5.large" in str(excinfo.value)


def test_relative_capacities_match_paper():
    small = instance_type("m1.small")
    medium = instance_type("m1.medium")
    large = instance_type("m5.large")
    assert small.cpu_capacity_ms_per_ms() < medium.cpu_capacity_ms_per_ms()
    assert large.vcpus == 2
    assert large.net_mbps == 10_000.0


def test_local_delivery_is_cheap_and_unmetered():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    server = Server(sim, instance_type("m5.large"))
    delay = fabric.delivery_delay(server, server, 1_000_000.0)
    assert delay == fabric.local_latency_ms
    assert server.net_meter.lifetime_total == 0.0


def test_remote_delivery_pays_rtt_and_serialization():
    sim = Simulator()
    fabric = NetworkFabric(sim, remote_rtt_ms=2.0)
    a = Server(sim, instance_type("m5.large"))
    b = Server(sim, instance_type("m5.large"))
    size = 1_250_000.0  # 1 ms at 10 Gbps
    delay = fabric.delivery_delay(a, b, size)
    assert delay == pytest.approx(1.0 + 1.0)  # rtt/2 + serialization
    assert a.net_meter.lifetime_total == size
    assert b.net_meter.lifetime_total == size


def test_remote_delivery_limited_by_slower_nic():
    sim = Simulator()
    fabric = NetworkFabric(sim, remote_rtt_ms=0.0)
    fast = Server(sim, instance_type("m5.large"))
    slow = Server(sim, instance_type("m1.small"))
    size = slow.itype.net_bytes_per_ms() * 10.0
    assert fabric.delivery_delay(fast, slow, size) == pytest.approx(10.0)


def test_client_delivery_charges_only_the_server():
    sim = Simulator()
    fabric = NetworkFabric(sim)
    server = Server(sim, instance_type("m5.large"))
    fabric.delivery_delay(None, server, 1_000.0)
    assert server.net_meter.lifetime_total == 1_000.0


def test_bulk_transfer_pays_full_rtt():
    sim = Simulator()
    fabric = NetworkFabric(sim, remote_rtt_ms=2.0)
    a = Server(sim, instance_type("m5.large"))
    b = Server(sim, instance_type("m5.large"))
    size = 1_250_000.0
    assert fabric.transfer_delay(a, b, size) == pytest.approx(2.0 + 1.0)
    assert fabric.transfer_delay(a, a, size) == fabric.local_latency_ms
