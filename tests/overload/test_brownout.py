"""Control-plane brownout: LEM period stretching, REPORT truncation,
drowning-vs-dead failure detection, and GEM stale-snapshot fallback.

Each test drives one server genuinely hot (back-to-back short jobs on a
single slow vCPU) so the brownout state machine trips on real profiler
readings rather than fabricated events.
"""

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.overload import OverloadConfig
from repro.sim import spawn


class Hot(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def _make(overload, hot_actors=1, seed=11, **config):
    """Two-server cluster; ``hot_actors`` Hot actors packed on server 0.

    The memory rule never fires (mem stays far below 95%), but a
    non-empty resource-rule set is what makes LEMs ship REPORTs — and
    it names ``Hot``, so those actors are report-related.
    """
    bed = build_cluster(2, seed=seed)
    policy = compile_source(
        "server.mem.perc > 95 => balance({Hot}, mem);", [Hot])
    manager = ElasticityManager(
        bed.system, policy,
        EmrConfig(period_ms=1_000.0, gem_wait_ms=100.0,
                  overload=overload, **config))
    events = []
    manager.add_listener(lambda kind, detail:
                         events.append((kind, dict(detail))))
    refs = [bed.system.create_actor(Hot, server=bed.servers[0])
            for _ in range(hot_actors)]
    cold = bed.system.create_actor(Hot, server=bed.servers[1])
    return bed, manager, events, refs, cold


def _pound(bed, refs, until_ms, loops_per_ref=3):
    """Saturate the hosting server: concurrent back-to-back 20ms jobs."""
    def loop(client, ref):
        while bed.sim.now < until_ms:
            yield client.call(ref, "spin", 20.0)

    for i, ref in enumerate(refs):
        for j in range(loops_per_ref):
            client = Client(bed.system, name=f"pound-{i}-{j}")
            spawn(bed.sim, loop(client, ref))


def _names(events, kind):
    return [detail.get("server") for k, detail in events if k == kind]


def test_brownout_enters_stretches_reporting_and_exits():
    overload = OverloadConfig(
        mailbox_capacity=0,
        brownout_enter_cpu_perc=40.0, brownout_exit_cpu_perc=10.0,
        brownout_enter_rounds=1, brownout_exit_rounds=1,
        brownout_stretch=3)
    bed, manager, events, refs, _cold = _make(
        overload, suspicion_timeout_ms=60_000.0)
    _pound(bed, refs, until_ms=8_000.0)
    manager.start()
    omanager = manager.overload
    bed.run(until_ms=30_000.0)

    hot = bed.servers[0].name
    entered = [(k, d) for k, d in events if k == "brownout-entered"]
    exited = [(k, d) for k, d in events if k == "brownout-exited"]
    assert hot in _names(events, "brownout-entered")
    assert hot in _names(events, "brownout-exited")
    # Hysteresis bracketed the load window: entered while pounding,
    # exited only after the load stopped at t=8s.
    first_enter = next(d for k, d in entered if d["server"] == hot)
    first_exit = next(d for k, d in exited if d["server"] == hot)
    assert first_enter["cpu_perc"] >= overload.brownout_enter_cpu_perc
    assert first_exit["cpu_perc"] <= overload.brownout_exit_cpu_perc
    assert not omanager.is_browned_out(hot)
    # Stretching skipped rounds: the browned-out LEM reported strictly
    # less often than its healthy neighbour over the same wall clock.
    hot_lem = manager.lems[bed.servers[0].server_id]
    cold_lem = manager.lems[bed.servers[1].server_id]
    assert hot_lem.rounds_run < cold_lem.rounds_run
    manager.stop()


def test_browned_out_report_truncated_to_top_k():
    overload = OverloadConfig(
        mailbox_capacity=0,
        brownout_enter_cpu_perc=40.0, brownout_exit_cpu_perc=10.0,
        brownout_enter_rounds=1, brownout_exit_rounds=1,
        brownout_stretch=2, brownout_top_k=3)
    bed, manager, events, refs, _cold = _make(
        overload, hot_actors=8, suspicion_timeout_ms=60_000.0,
        lem_stagger_ms=0.0)
    _pound(bed, refs, until_ms=15_000.0, loops_per_ref=1)
    manager.start()
    bed.run(until_ms=15_000.0)
    manager.stop()

    hot = bed.servers[0].name
    truncated = [d for k, d in events if k == "report-truncated"]
    assert truncated, "browned-out LEM never compressed a REPORT"
    assert {d["server"] for d in truncated} == {hot}
    for detail in truncated:
        assert detail["kept"] == 3
        assert detail["dropped"] == 8 - 3
    # The healthy server's REPORTs are never truncated.
    assert all(d["server"] != bed.servers[1].name for d in truncated)


def test_drowning_server_is_not_falsely_suspected():
    # Stretched reporting (every 3s) exceeds the raw suspicion timeout
    # (2s): without the drowning grace the detector would declare the
    # saturated server dead and resurrect its actors elsewhere.
    overload = OverloadConfig(
        mailbox_capacity=0,
        brownout_enter_cpu_perc=40.0, brownout_exit_cpu_perc=10.0,
        brownout_enter_rounds=1, brownout_exit_rounds=1,
        brownout_stretch=3)
    bed, manager, events, refs, _cold = _make(
        overload, suspicion_timeout_ms=2_000.0)
    _pound(bed, refs, until_ms=20_000.0)
    manager.start()
    bed.run(until_ms=20_000.0)
    manager.stop()

    hot = bed.servers[0].name
    assert hot in _names(events, "brownout-entered")
    assert hot in _names(events, "server-drowning")
    assert hot not in _names(events, "server-suspected")
    assert not any(k == "actor-lost" for k, _d in events)
    # Announced once per silence episode (a REPORT arriving resets the
    # episode), not on every detector tick inside the grace window:
    # stretched reports land every 3s over 20s, so at most ~7 episodes.
    drowning = _names(events, "server-drowning")
    assert 1 <= drowning.count(hot) <= 7
    # The actor stayed put: no false resurrection ever moved it.
    for ref in refs:
        record = bed.system.directory.try_lookup(ref.actor_id)
        assert record is not None
        assert record.server is bed.servers[0]


def test_gem_plans_with_stale_snapshot_of_skipped_rounds():
    overload = OverloadConfig(
        mailbox_capacity=0,
        brownout_enter_cpu_perc=40.0, brownout_exit_cpu_perc=10.0,
        brownout_enter_rounds=1, brownout_exit_rounds=1,
        brownout_stretch=3, stale_snapshot_ms=10_000.0)
    bed, manager, events, refs, _cold = _make(
        overload, suspicion_timeout_ms=60_000.0)
    _pound(bed, refs, until_ms=20_000.0)
    manager.start()
    bed.run(until_ms=20_000.0)
    manager.stop()

    hot = bed.servers[0].name
    used = [d for k, d in events if k == "stale-snapshot-used"]
    assert used, "GEM never fell back to a cached snapshot"
    assert {d["server"] for d in used} == {hot}
    for detail in used:
        # Bounded staleness: never older than the configured limit.
        assert 0.0 < detail["age_ms"] <= overload.stale_snapshot_ms
    assert sum(gem.stale_snapshots_used for gem in manager.gems) \
        == len(used)
