"""Data-plane overload protection: bounded mailboxes, shedding policies,
admission control, and the disposition ledger.

These tests install an :class:`OverloadManager` directly on an
``ActorSystem`` (no elasticity manager), the unit-level wiring the
config docstring promises, so every policy branch is pinned without a
whole EMR scenario.
"""

import pytest

from repro.actors import Actor, Client, Overloaded
from repro.bench import build_cluster
from repro.overload import (DISPOSITIONS, MAILBOX_POLICIES, OverloadConfig,
                            OverloadManager)
from repro.sim import Timeout, spawn


class Worker(Actor):
    def work(self, cpu_ms):
        yield self.compute(cpu_ms)
        return "done"

    def quick(self):
        yield self.compute(0.01)
        return "ok"


def _protect(bed, **kwargs):
    manager = OverloadManager(bed.system, OverloadConfig(**kwargs))
    bed.system.overload = manager
    return manager


def _flood(bed, client, ref, count, cpu_ms=50.0):
    """Issue ``count`` back-to-back calls; return their reply signals."""
    return [client.call(ref, "work", cpu_ms) for _ in range(count)]


# -- config validation -------------------------------------------------


def test_config_validation():
    assert set(MAILBOX_POLICIES) == {"block", "shed", "deadline"}
    with pytest.raises(ValueError):
        OverloadConfig(policy="drop-oldest")
    with pytest.raises(ValueError):
        OverloadConfig(mailbox_capacity=-1)
    with pytest.raises(ValueError):
        OverloadConfig(block_retry_ms=0.0)
    with pytest.raises(ValueError):
        OverloadConfig(admission_cpu_perc=150.0)
    with pytest.raises(ValueError):
        # Exit watermark must sit strictly below enter (hysteresis).
        OverloadConfig(brownout_enter_cpu_perc=60.0,
                       brownout_exit_cpu_perc=60.0)
    with pytest.raises(ValueError):
        OverloadConfig(brownout_stretch=0)


def test_dispositions_catalogue():
    assert len(set(DISPOSITIONS)) == len(DISPOSITIONS)
    assert "consumed" in DISPOSITIONS and "shed" in DISPOSITIONS


# -- shed policy -------------------------------------------------------


def test_shed_policy_bounds_mailbox_and_nacks_clients():
    bed = build_cluster(1)
    overload = _protect(bed, mailbox_capacity=4, policy="shed")
    ref = bed.system.create_actor(Worker)
    client = Client(bed.system)
    replies = []

    def body():
        signals = _flood(bed, client, ref, 12)
        for signal in signals:
            replies.append((yield signal))

    spawn(bed.sim, body())
    bed.run(until_ms=60_000.0)
    nacks = [r for r in replies if isinstance(r, Overloaded)]
    done = [r for r in replies if r == "done"]
    # One in flight + 4 queued can survive; the rest are shed-newest.
    assert len(done) == 5
    assert len(nacks) == 7
    assert all(nack.reason == "shed" for nack in nacks)
    assert overload.peak_mailbox_depth <= 4
    assert overload.total_shed() == 7
    assert overload.shed_by_actor == {ref.actor_id: 7}
    [(server_name, count)] = overload.shed_by_server.items()
    assert count == 7


def test_shed_conservation_ledger_balances():
    bed = build_cluster(1)
    overload = _protect(bed, mailbox_capacity=4, policy="shed")
    ref = bed.system.create_actor(Worker)
    client = Client(bed.system)

    def body():
        signals = _flood(bed, client, ref, 12)
        for signal in signals:
            yield signal

    spawn(bed.sim, body())
    bed.run(until_ms=60_000.0)
    balance = overload.conservation_balance()
    assert balance["issued"] == 12
    assert balance["consumed"] == 5
    assert balance["shed"] == 7
    assert balance["outstanding"] == 0
    assert overload.outstanding_count == 0
    assert overload.double_dispositions == []
    total = sum(balance[kind] for kind in DISPOSITIONS)
    assert balance["issued"] == total + balance["outstanding"]


# -- block policy ------------------------------------------------------


def test_block_policy_delivers_everything_late():
    bed = build_cluster(1)
    overload = _protect(bed, mailbox_capacity=2, policy="block",
                        block_retry_ms=1.0)
    ref = bed.system.create_actor(Worker)
    client = Client(bed.system)
    replies = []

    def body():
        signals = _flood(bed, client, ref, 10, cpu_ms=5.0)
        for signal in signals:
            replies.append((yield signal))

    spawn(bed.sim, body())
    bed.run(until_ms=60_000.0)
    # Backpressure defers delivery instead of dropping: all complete.
    assert replies == ["done"] * 10
    assert overload.total_shed() == 0
    assert overload.backpressure_waits > 0
    assert overload.peak_mailbox_depth <= 2
    balance = overload.conservation_balance()
    assert balance["consumed"] == 10 and balance["outstanding"] == 0


# -- deadline policy ---------------------------------------------------


def test_deadline_policy_drops_expired_on_arrival():
    bed = build_cluster(2)
    _protect(bed, mailbox_capacity=0, policy="deadline")
    overload = bed.system.overload
    ref = bed.system.create_actor(Worker, server=bed.servers[1])
    client = Client(bed.system)
    replies = []

    def body():
        # Deadline already in the past when the message arrives at the
        # remote mailbox (network latency > 0): dropped as waste.
        replies.append((yield client.call(ref, "work", 1.0,
                                          deadline_ms=bed.sim.now)))
        # Generous deadline: delivered normally.
        replies.append((yield client.call(ref, "work", 1.0,
                                          deadline_ms=bed.sim.now
                                          + 10_000.0)))

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    assert isinstance(replies[0], Overloaded)
    assert replies[0].reason == "deadline"
    assert replies[1] == "done"
    assert overload.counts["deadline"] == 1
    assert overload.counts["consumed"] == 1


def test_deadline_ignored_without_overload_manager():
    bed = build_cluster(2)
    ref = bed.system.create_actor(Worker, server=bed.servers[1])
    client = Client(bed.system)
    replies = []

    def body():
        replies.append((yield client.call(ref, "work", 1.0,
                                          deadline_ms=0.0)))

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    assert replies == ["done"]


# -- admission control -------------------------------------------------


def test_admission_queue_depth_rejects_clients():
    bed = build_cluster(1)
    overload = _protect(bed, mailbox_capacity=0,
                        admission_queue_depth=3)
    ref = bed.system.create_actor(Worker)
    client = Client(bed.system)
    replies = []

    def body():
        signals = _flood(bed, client, ref, 10)
        for signal in signals:
            replies.append((yield signal))

    spawn(bed.sim, body())
    bed.run(until_ms=60_000.0)
    rejected = [r for r in replies if isinstance(r, Overloaded)]
    assert len(rejected) == 6          # 1 in flight + 3 queued survive
    assert all(r.reason == "admission" for r in rejected)
    assert overload.counts["rejected"] == 6
    assert overload.total_shed() == 0  # rejected, not shed


def test_admission_spares_actor_to_actor_traffic():
    class Fanout(Actor):
        def fan(self, peer, n):
            for _ in range(n):
                yield self.call(peer, "quick")
            return "fanned"

    bed = build_cluster(1)
    overload = _protect(bed, mailbox_capacity=0, admission_queue_depth=1)
    peer = bed.system.create_actor(Worker)
    fan = bed.system.create_actor(Fanout)
    client = Client(bed.system)
    replies = []

    def body():
        # Sequential asks never queue more than one message, but the
        # point stands: actor-to-actor traffic bypasses admission.
        replies.append((yield client.call(fan, "fan", peer, 5)))

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    assert replies == ["fanned"]
    assert overload.counts["rejected"] == 0


def test_admission_cpu_threshold_rejects_under_load():
    bed = build_cluster(1)
    overload = _protect(bed, mailbox_capacity=0, admission_cpu_perc=50.0,
                        admission_cpu_window_ms=500.0)
    ref = bed.system.create_actor(Worker)
    client = Client(bed.system)
    replies = []

    def body():
        # Saturate the server's CPU with a stream of short jobs (CPU
        # time is booked per completed job), then knock on the door.
        signals = _flood(bed, client, ref, 40, cpu_ms=50.0)
        yield Timeout(bed.sim, 800.0)
        replies.append((yield client.call(ref, "work", 1.0)))
        for signal in signals:
            yield signal

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    assert isinstance(replies[0], Overloaded)
    assert replies[0].reason == "admission"
    assert overload.counts["rejected"] == 1


# -- dispatch-time accounting ------------------------------------------


def test_destroy_actor_accounts_queued_messages():
    bed = build_cluster(1)
    overload = _protect(bed, mailbox_capacity=0)
    ref = bed.system.create_actor(Worker)
    client = Client(bed.system)

    def body():
        signals = _flood(bed, client, ref, 5, cpu_ms=1_000.0)
        yield Timeout(bed.sim, 1_500.0)
        # Two consumed by now (the second popped at ~1s); the three
        # still queued die with the actor.
        bed.system.destroy_actor(ref)
        for signal in signals:
            yield signal

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    balance = overload.conservation_balance()
    assert balance["issued"] == 5
    assert balance["outstanding"] == 0
    assert balance["consumed"] == 2
    assert balance["dead-target"] == 3
    assert overload.double_dispositions == []


def test_crash_server_accounts_queued_messages():
    bed = build_cluster(2)
    overload = _protect(bed, mailbox_capacity=0)
    ref = bed.system.create_actor(Worker, server=bed.servers[1])
    client = Client(bed.system)

    def body():
        signals = _flood(bed, client, ref, 5, cpu_ms=1_000.0)
        yield Timeout(bed.sim, 1_500.0)
        bed.system.crash_server(bed.servers[1])
        for signal in signals:
            yield signal

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    balance = overload.conservation_balance()
    assert balance["issued"] == 5
    assert balance["outstanding"] == 0
    assert balance["consumed"] == 2
    assert balance["crashed"] == 3
    assert overload.double_dispositions == []


def test_defaults_change_nothing_when_detached():
    """system.overload is None by default; plain runs stay plain."""
    bed = build_cluster(1)
    assert bed.system.overload is None
    ref = bed.system.create_actor(Worker)
    client = Client(bed.system)
    replies = []

    def body():
        for signal in _flood(bed, client, ref, 8, cpu_ms=1.0):
            replies.append((yield signal))

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    assert replies == ["done"] * 8
