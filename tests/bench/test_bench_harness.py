"""Unit tests for the bench harness and recorder."""

import pytest

from repro.actors import Actor, Client
from repro.bench import (ClusterRecorder, TestBed, build_cluster,
                         format_series, format_table, latency_curve, mean)
from repro.sim import spawn


class Echo(Actor):
    def ping(self):
        yield self.compute(1.0)
        return "pong"


def test_build_cluster_boots_and_wires():
    bed = build_cluster(3, instance_type="m1.small", seed=5)
    assert len(bed.servers) == 3
    assert bed.provisioner.fleet_size() == 3
    assert bed.system.provisioner is bed.provisioner
    assert all(s.itype.name == "m1.small" for s in bed.servers)


def test_recorder_samples_cluster_state():
    bed = build_cluster(2)
    recorder = ClusterRecorder(bed.system, sample_ms=1_000.0)
    bed.system.create_actor(Echo, server=bed.servers[0])
    recorder.start()
    bed.run(until_ms=5_500.0)
    assert len(recorder.fleet_size) == 5
    assert recorder.fleet_size.last() == 2
    counts = recorder.actor_count_table()
    assert dict(counts)[bed.servers[0].name] == 1
    assert recorder.cpu_spread_at_end() >= 0.0


def test_latency_curve_buckets_by_time():
    bed = build_cluster(1)
    ref = bed.system.create_actor(Echo)
    client = Client(bed.system)

    def body():
        for _ in range(10):
            yield from client.timed_call(ref, "ping")

    spawn(bed.sim, body())
    bed.run(until_ms=10_000.0)
    curve = latency_curve([client], bucket_ms=1_000.0)
    assert curve
    assert all(latency > 0 for _t, latency in curve)


def test_mean_helper():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


def test_format_table_aligns_columns():
    text = format_table(["name", "value"],
                        [["alpha", 1.5], ["b", 20]], title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in lines[3]
    assert "1.500" in lines[3]


def test_format_series_downsamples():
    series = [(float(i), float(i * 2)) for i in range(100)]
    text = format_series("curve", series, max_points=10)
    assert text.startswith("curve")
    assert text.count(":") <= 11
