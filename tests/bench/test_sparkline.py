"""Tests for the sparkline renderer."""

from hypothesis import given, strategies as st

from repro.bench import sparkline


def test_empty_series():
    assert sparkline([]) == ""


def test_constant_series_is_flat():
    line = sparkline([5.0, 5.0, 5.0])
    assert len(line) == 3
    assert len(set(line)) == 1


def test_monotone_series_uses_full_range():
    line = sparkline(list(range(8)))
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert list(line) == sorted(line)


def test_downsampling_caps_width():
    line = sparkline(list(range(500)), width=40)
    assert len(line) == 40


def test_single_value():
    assert len(sparkline([42.0])) == 1


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=100))
def test_sparkline_properties(values, width):
    line = sparkline(values, width=width)
    assert 1 <= len(line) <= max(width, len(values))
    assert len(line) <= width or len(values) <= width
    assert all(ch in "▁▂▃▄▅▆▇█" for ch in line)
