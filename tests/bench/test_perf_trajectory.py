"""Unit tests for the BENCH_perf.json gate logic (repro.bench.perf)."""

import json

from repro.bench.perf import (check_floors, check_regression, load_bench,
                              record_metrics)


def bench_doc(**benchmarks):
    return {"schema": 1, "benchmarks": benchmarks}


# ---------------------------------------------------------------------------
# ratio regression gate
# ---------------------------------------------------------------------------


def test_check_regression_flags_only_ratios():
    baseline = bench_doc(sim=dict(events_per_sec=1_000_000.0,
                                  kernel_latency_ratio=0.5))
    current = bench_doc(sim=dict(events_per_sec=10.0,  # absolute: not gated
                                 kernel_latency_ratio=0.58))
    assert check_regression(baseline, current) == []
    current["benchmarks"]["sim"]["kernel_latency_ratio"] = 0.61
    failures = check_regression(baseline, current)
    assert len(failures) == 1 and "kernel_latency_ratio" in failures[0]


def test_check_regression_skips_new_benchmarks():
    current = bench_doc(brand_new=dict(some_ratio=9.0))
    assert check_regression(bench_doc(), current) == []


# ---------------------------------------------------------------------------
# absolute floor gate
# ---------------------------------------------------------------------------


def test_check_floors_passes_above_floor():
    baseline = bench_doc(sim_kernel=dict(engine_events_per_sec=1_000.0))
    current = bench_doc(sim_kernel=dict(engine_events_per_sec=950.0))
    assert check_floors(baseline, current,
                        ["sim_kernel.engine_events_per_sec"]) == []


def test_check_floors_fails_below_floor():
    baseline = bench_doc(sim_kernel=dict(engine_events_per_sec=1_000.0))
    current = bench_doc(sim_kernel=dict(engine_events_per_sec=899.0))
    failures = check_floors(baseline, current,
                            ["sim_kernel.engine_events_per_sec"],
                            floor_fraction=0.90)
    assert len(failures) == 1
    assert "below floor" in failures[0]


def test_check_floors_fails_when_metric_dropped():
    # Deleting the gated metric must not sneak past the gate.
    baseline = bench_doc(sim_kernel=dict(engine_events_per_sec=1_000.0))
    current = bench_doc(sim_kernel=dict(queue_ops_per_sec=5.0))
    failures = check_floors(baseline, current,
                            ["sim_kernel.engine_events_per_sec"])
    assert len(failures) == 1
    assert "missing" in failures[0]


def test_check_floors_skips_metric_new_to_baseline():
    # A metric absent from the committed baseline introduces its own
    # floor on the *next* commit; its first run cannot fail.
    current = bench_doc(sim_kernel=dict(engine_events_per_sec=1.0))
    assert check_floors(bench_doc(), current,
                        ["sim_kernel.engine_events_per_sec"]) == []


def test_check_floors_rejects_malformed_path():
    failures = check_floors(bench_doc(), bench_doc(), ["no_dot_here"])
    assert failures and "benchmark.metric" in failures[0]


# ---------------------------------------------------------------------------
# recorder round-trip
# ---------------------------------------------------------------------------


def test_record_metrics_rounds_and_merges(tmp_path):
    path = str(tmp_path / "bench.json")
    record_metrics("sim_kernel", {
        "engine_events_per_sec": 123456.789,
        "kernel_latency_ratio": 0.123456,
    }, path=path)
    record_metrics("other", {"ops_per_sec": 2.0}, path=path)
    data = load_bench(path)
    sim = data["benchmarks"]["sim_kernel"]
    assert sim["engine_events_per_sec"] == 123456.79   # 2 digits
    assert sim["kernel_latency_ratio"] == 0.1235       # ratios get 4
    assert set(data["benchmarks"]) == {"other", "sim_kernel"}
    with open(path) as handle:
        assert json.load(handle)["schema"] == 1


def test_cli_exit_codes(tmp_path):
    from repro.bench.perf import _main
    baseline = tmp_path / "base.json"
    current = tmp_path / "cur.json"
    baseline.write_text(json.dumps(bench_doc(
        sim_kernel=dict(engine_events_per_sec=1_000.0, r_ratio=1.0))))
    current.write_text(json.dumps(bench_doc(
        sim_kernel=dict(engine_events_per_sec=500.0, r_ratio=1.0))))
    args = [str(baseline), str(current)]
    assert _main(args) == 0  # absolute drop alone is not gated...
    assert _main(args + ["--floor", "sim_kernel.engine_events_per_sec"
                         ]) == 1  # ...until a floor names it
    assert _main(args + ["--floor", "sim_kernel.engine_events_per_sec",
                         "--floor-frac", "0.4"]) == 0
