"""StateStore unit tests: sequences, acks, replicas, journal."""

import pytest

from repro.durability import Checkpoint, StateStore, state_digest
from repro.durability import store as store_module


class FakeServer:
    """Identity-keyed stand-in; the store only reads .name/.running."""

    def __init__(self, name, running=True):
        self.name = name
        self.running = running


def make_checkpoint(store, actor_id=1, state=None, replicas=(),
                    trigger="periodic", size_bytes=1024.0):
    state = {"total": 0} if state is None else state
    return Checkpoint(
        actor_id=actor_id, type_name="Fake",
        seq=store.next_seq(actor_id), taken_at=0.0, state=state,
        size_bytes=size_bytes, trigger=trigger,
        journal_mark=store.journal_mark, digest=state_digest(state),
        replicas=tuple(replicas))


def test_digest_is_content_addressed_and_order_insensitive():
    assert state_digest({"a": 1, "b": 2}) == state_digest({"b": 2, "a": 1})
    assert state_digest({"a": 1}) != state_digest({"a": 2})
    assert len(state_digest({})) == 16


def test_sequences_are_per_actor_monotonic():
    store = StateStore()
    assert [store.next_seq(1), store.next_seq(1), store.next_seq(2)] \
        == [1, 2, 1]
    assert store.last_seq(1) == 2
    assert store.last_seq(99) == 0


def test_add_rejects_seq_regression():
    store = StateStore()
    first = make_checkpoint(store)
    store.add(first)
    stale = Checkpoint(
        actor_id=1, type_name="Fake", seq=first.seq, taken_at=0.0,
        state={}, size_bytes=0.0, trigger="periodic", journal_mark=0,
        digest=state_digest({}))
    with pytest.raises(ValueError, match="seq regression"):
        store.add(stale)


def test_ack_counts_bytes_per_replica_copy():
    store = StateStore()
    replicas = (FakeServer("a"), FakeServer("b"))
    checkpoint = make_checkpoint(store, replicas=replicas,
                                 size_bytes=100.0)
    store.add(checkpoint)
    assert not checkpoint.acked
    store.ack(checkpoint, now=5.0)
    assert checkpoint.acked and checkpoint.acked_at == 5.0
    assert store.bytes_replicated == 200.0
    assert store.checkpoints_acked == 1


def test_latest_acked_skips_unacked_aborted_and_unusable():
    store = StateStore()
    alive, dead = FakeServer("alive"), FakeServer("dead", running=False)
    acked = make_checkpoint(store, state={"total": 1}, replicas=(alive,))
    store.add(acked)
    store.ack(acked, 1.0)
    aborted = make_checkpoint(store, state={"total": 2}, replicas=(alive,))
    store.add(aborted)
    store.ack(aborted, 2.0)
    aborted.aborted = True
    unacked = make_checkpoint(store, state={"total": 3}, replicas=(alive,))
    store.add(unacked)
    assert store.latest_acked(1) is acked
    # A usable() filter that rejects every replica finds nothing.
    assert store.latest_acked(1, usable=lambda s: s is dead) is None
    assert store.latest_acked(42) is None


def test_discard_replicas_on_crashed_server():
    store = StateStore()
    a, b = FakeServer("a"), FakeServer("b")
    checkpoint = make_checkpoint(store, replicas=(a, b))
    store.add(checkpoint)
    store.ack(checkpoint, 1.0)
    assert store.discard_replicas_on(a) == 1
    assert checkpoint.replicas == (b,)
    assert store.replicas_discarded == 1
    # All copies gone: the checkpoint is no longer restorable.
    store.discard_replicas_on(b)
    assert store.latest_acked(1) is None


def test_prune_keeps_only_max_acked_checkpoints():
    store = StateStore(max_per_actor=2)
    server = FakeServer("a")
    acked = []
    for i in range(4):
        checkpoint = make_checkpoint(store, state={"total": i},
                                     replicas=(server,))
        store.add(checkpoint)
        store.ack(checkpoint, float(i))
        acked.append(checkpoint)
    history = store.checkpoints(1)
    assert [cp.seq for cp in history] == [3, 4]
    assert store.latest_acked(1) is acked[-1]


def test_journal_sequences_survive_trimming(monkeypatch):
    monkeypatch.setattr(store_module, "_JOURNAL_CAP", 3)
    store = StateStore()
    for i in range(5):
        store.append_journal("actor-created", actor_id=i, time_ms=float(i))
    assert len(store.journal) == 3
    assert store._journal_trimmed == 2
    # Global sequence keeps counting through the trim, so marks taken
    # before the trim still order correctly against surviving entries.
    assert store.journal_mark == 5
    assert [entry.seq for entry in store.journal] == [3, 4, 5]


def test_journal_since_filters_by_actor_and_mark():
    store = StateStore()
    store.append_journal("actor-created", actor_id=7, time_ms=0.0)
    mark = store.journal_mark
    store.append_journal("migration-prepare", actor_id=7, time_ms=1.0)
    store.append_journal("actor-created", actor_id=8, time_ms=2.0)
    store.append_journal("migration-commit", actor_id=7, time_ms=3.0)
    kinds = [entry.kind for entry in store.journal_since(7, mark)]
    assert kinds == ["migration-prepare", "migration-commit"]
    assert store.journal_since(7, store.journal_mark) == []


def test_journal_can_be_disabled():
    store = StateStore(journal_enabled=False)
    assert store.append_journal("actor-created", 1, 0.0) is None
    assert store.journal == []
    assert store.journal_mark == 0


def test_summary_shape():
    store = StateStore()
    server = FakeServer("a")
    checkpoint = make_checkpoint(store, replicas=(server,))
    store.add(checkpoint)
    store.ack(checkpoint, 1.0)
    store.append_journal("actor-created", 1, 0.0)
    summary = store.summary()
    assert summary["totals"]["checkpoints_written"] == 1
    assert summary["totals"]["checkpoints_acked"] == 1
    assert summary["journal"]["kinds"] == {"actor-created": 1}
    (row,) = summary["actors"]
    assert row["actor_id"] == 1
    assert row["acked_seq"] == checkpoint.seq
    assert row["replicas"] == ["a"]
