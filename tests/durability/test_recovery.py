"""State-preserving recovery: resurrection restores checkpoints,
rollback restores the shipped transfer checkpoint, and clients riding
over a crash observe restored — not fresh — state."""

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.durability import DurabilityConfig, state_digest
from repro.sim import Timeout, spawn


class Counter(Actor):
    state_size_mb = 1.0

    def __init__(self):
        self.total = 0

    def add(self, amount):
        yield self.compute(0.5)
        self.total += amount
        return self.total

    def get(self):
        yield self.compute(0.1)
        return self.total


def counter_policy():
    return compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Counter}, cpu);", [Counter])


def make_manager(bed, durability, **overrides):
    defaults = dict(period_ms=2_000.0, gem_wait_ms=300.0,
                    lem_stagger_ms=10.0, suspicion_timeout_ms=2_500.0,
                    durability=durability)
    defaults.update(overrides)
    manager = ElasticityManager(bed.system, counter_policy(),
                                EmrConfig(**defaults))
    manager.start()
    return manager


def record_events(manager):
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    return events


# -- resurrection restores ----------------------------------------------


def test_resurrection_restores_last_acknowledged_state():
    bed = build_cluster(3, seed=3)
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=500.0)
    manager = make_manager(bed, config)
    events = record_events(manager)
    ref = bed.system.create_actor(Counter, server=bed.servers[0])
    client = Client(bed.system)

    def driver():
        for _ in range(10):
            yield client.call(ref, "add", 1)

    spawn(bed.sim, driver())
    bed.run(until_ms=3_000.0)
    store = manager.durability.store
    acked = store.latest_acked(ref.actor_id)
    assert acked is not None and acked.state["total"] > 0
    acked_total = acked.state["total"]

    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=12_000.0)
    restored = [d for k, d in events if k == "state-restored"]
    assert len(restored) == 1
    assert restored[0]["actor_id"] == ref.actor_id
    # The instance carries the checkpointed total, not a fresh zero —
    # and at least everything acknowledged before the crash survived.
    record = bed.system.directory.lookup(ref.actor_id)
    assert record.instance.total >= acked_total > 0
    # The event's digest is computed from the instance AFTER restore
    # (round-trip): it must match a digest of the live state.
    assert restored[0]["digest"] == state_digest(
        record.instance.snapshot_state())
    assert manager.durability.restores == 1


def test_without_durability_resurrection_is_fresh():
    bed = build_cluster(3, seed=3)
    manager = make_manager(bed, durability=None)
    ref = bed.system.create_actor(Counter, server=bed.servers[0])
    client = Client(bed.system)

    def driver():
        for _ in range(10):
            yield client.call(ref, "add", 1)

    spawn(bed.sim, driver())
    bed.run(until_ms=3_000.0)
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=12_000.0)
    record = bed.system.directory.lookup(ref.actor_id)
    assert record.instance.total == 0


def test_restore_miss_when_no_checkpoint_survives():
    bed = build_cluster(3, seed=3)
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=500.0)
    manager = make_manager(bed, config)
    events = record_events(manager)
    ref = bed.system.create_actor(Counter, server=bed.servers[0])
    bed.run(until_ms=2_000.0)
    # Every stored copy becomes unreadable before the crash.
    for checkpoint in manager.durability.store.checkpoints(ref.actor_id):
        checkpoint.aborted = True
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=12_000.0)
    record = bed.system.directory.lookup(ref.actor_id)
    assert record.instance.total == 0          # fresh restart, honestly
    assert manager.durability.restore_misses == 1
    assert not any(k == "state-restored" for k, _ in events)


def test_journal_suffix_replayed_on_restore():
    bed = build_cluster(3, seed=3)
    config = DurabilityConfig(enabled=True,
                              checkpoint_interval_ms=500.0)
    manager = make_manager(bed, config)
    events = record_events(manager)
    ref = bed.system.create_actor(Counter, server=bed.servers[0])
    client = Client(bed.system)

    def driver():
        for _ in range(5):
            yield client.call(ref, "add", 1)

    spawn(bed.sim, driver())
    bed.run(until_ms=3_000.0)
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=12_000.0)
    replayed = [d for k, d in events if k == "journal-replayed"]
    assert len(replayed) == 1
    # The actor's death was journaled after its restored checkpoint, so
    # the replayed per-actor suffix must mention it.
    assert "actor-destroyed" in replayed[0]["kinds"]
    assert manager.durability.journal_replays == 1


# -- migration rollback restores the shipped checkpoint ------------------


class BigCounter(Counter):
    # Big enough that the transfer outlasts the scheduled link cut.
    state_size_mb = 8.0


def test_rollback_restores_transfer_checkpoint():
    bed = build_cluster(2, seed=3)
    config = DurabilityConfig(enabled=True,
                              checkpoint_interval_ms=60_000.0)
    manager = make_manager(bed, config, suspicion_timeout_ms=None)
    events = record_events(manager)
    src, dst = bed.servers
    ref = bed.system.create_actor(BigCounter, server=src)
    record = bed.system.directory.lookup(ref.actor_id)
    record.instance.total = 42
    bed.run(until_ms=100.0)

    done = bed.system.migrate_actor(ref, dst)
    # Cut the link mid-transfer and keep it cut past the commit phase
    # timeout, then corrupt the live state — rollback must restore the
    # snapshot the transfer shipped.
    bed.sim.schedule(1.0, bed.system.fabric.partition, {src.server_id})
    bed.sim.schedule(2.0, lambda: setattr(record.instance, "total", -999))
    bed.run(until_ms=bed.sim.now + 10_000.0)
    assert done.value is False
    assert bed.system.server_of(ref) is src
    assert record.instance.total == 42
    written = [d for k, d in events if k == "checkpoint-written"]
    transfer = [d for d in written if d["trigger"] == "transfer"]
    assert len(transfer) == 1
    assert transfer[0]["replicas"] == (dst.name,)
    # The rolled-back transfer checkpoint never acknowledges.
    acked = [d for k, d in events if k == "checkpoint-replicated"]
    assert all(d["trigger"] != "transfer" for d in acked)


def test_committed_migration_acks_transfer_checkpoint():
    bed = build_cluster(2, seed=3)
    config = DurabilityConfig(enabled=True,
                              checkpoint_interval_ms=60_000.0)
    manager = make_manager(bed, config, suspicion_timeout_ms=None)
    events = record_events(manager)
    src, dst = bed.servers
    ref = bed.system.create_actor(Counter, server=src)
    bed.run(until_ms=100.0)
    done = bed.system.migrate_actor(ref, dst)
    bed.run(until_ms=bed.sim.now + 5_000.0)
    assert done.value is True
    acked = [d for k, d in events if k == "checkpoint-replicated"
             and d["trigger"] == "transfer"]
    assert len(acked) == 1
    assert acked[0]["replicas"] == (dst.name,)
    # The journal recorded the full phase sequence.
    kinds = [e.kind for e in manager.durability.store.journal
             if e.actor_id == ref.actor_id]
    assert kinds[-3:] == ["migration-prepare", "migration-transfer",
                          "migration-commit"]


# -- satellite: a client call in flight across the crash -----------------


def run_client_through_crash(durability, seed=13):
    """One client hammers one counter; its server dies mid-run and the
    actor resurrects.  Returns (replies, final total, attempts)."""
    bed = build_cluster(3, seed=seed)
    manager = make_manager(bed, durability)
    ref = bed.system.create_actor(Counter, server=bed.servers[0])
    client = Client(bed.system, timeout_ms=1_000.0, max_retries=8,
                    backoff_base_ms=100.0, backoff_cap_ms=1_000.0)
    replies = []
    attempts = []

    def loop():
        while bed.sim.now < 20_000.0:
            attempts.append(bed.sim.now)
            value = yield from client.reliable_call(ref, "add", 1)
            if value is not None:
                replies.append((bed.sim.now, value))
            yield Timeout(bed.sim, 50.0)

    spawn(bed.sim, loop())
    bed.sim.schedule(4_000.0, bed.system.crash_server, bed.servers[0])
    bed.run(until_ms=20_000.0)

    final = []

    def read_back():
        value = yield from client.reliable_call(ref, "get")
        final.append(value)

    spawn(bed.sim, read_back())
    bed.run(until_ms=bed.sim.now + 2_000.0)
    return replies, final[0], len(attempts)


def test_call_in_flight_across_crash_observes_restored_state():
    # Checkpoint after every message: the acknowledged tail at crash
    # time is within one write of the applied total.
    config = DurabilityConfig(enabled=True,
                              checkpoint_interval_ms=2_000.0,
                              dirty_message_threshold=1)
    replies, final, attempts = run_client_through_crash(config)
    pre = [value for t, value in replies if t < 4_000.0]
    post = [value for t, value in replies if t >= 4_000.0]
    assert pre and post, "crash must interrupt an active client"
    # The first reply after recovery continues from restored state —
    # never from a fresh zero (which would echo 1).
    assert post[0] > 1
    # ... and never loses acknowledged history: the restored lineage
    # resumes no lower than the last pre-crash checkpointed total.
    assert post[0] >= pre[-1] - 1
    # No double-apply: the counter never exceeds one increment per
    # attempted call.
    assert final <= attempts
    assert final == max(value for _t, value in replies)


def test_call_in_flight_across_crash_without_durability_is_fresh():
    replies, _final, _attempts = run_client_through_crash(None)
    post = [value for t, value in replies if t >= 4_000.0]
    assert post and post[0] == 1   # the A/B control: state reset
