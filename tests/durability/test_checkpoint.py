"""Checkpoint protocol: triggers, replication, costs, and inertness
when disabled."""

import pytest

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.durability import DurabilityConfig, DurabilityManager
from repro.sim import spawn


class Counter(Actor):
    state_size_mb = 1.0

    def __init__(self):
        self.total = 0

    def add(self, amount):
        yield self.compute(0.5)
        self.total += amount
        return self.total


def counter_policy():
    return compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Counter}, cpu);", [Counter])


def make_manager(bed, durability=None, **overrides):
    defaults = dict(period_ms=2_000.0, gem_wait_ms=300.0,
                    lem_stagger_ms=10.0, durability=durability)
    defaults.update(overrides)
    manager = ElasticityManager(bed.system, counter_policy(),
                                EmrConfig(**defaults))
    return manager


def record_events(manager):
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    return events


# -- configuration ------------------------------------------------------


@pytest.mark.parametrize("bad", [
    dict(checkpoint_interval_ms=0.0),
    dict(checkpoint_interval_ms=-5.0),
    dict(dirty_message_threshold=0),
    dict(replication_factor=0),
    dict(serialize_cpu_ms=-0.1),
    dict(snapshot_fraction=0.0),
    dict(snapshot_fraction=1.5),
    dict(max_checkpoints_per_actor=0),
])
def test_config_validation_rejects(bad):
    with pytest.raises(ValueError):
        DurabilityConfig(enabled=True, **bad)


def test_emr_config_rejects_non_config_durability():
    with pytest.raises(ValueError, match="durability"):
        EmrConfig(durability={"enabled": True})


def test_manager_requires_enabled_config():
    bed = build_cluster(2)
    manager = make_manager(
        bed, durability=DurabilityConfig(enabled=False))
    with pytest.raises(ValueError, match="enabled"):
        DurabilityManager(manager)


# -- default off: inert -------------------------------------------------


def test_disabled_attaches_nothing():
    bed = build_cluster(2)
    for durability in (None, DurabilityConfig(enabled=False)):
        manager = make_manager(bed, durability=durability)
        events = record_events(manager)
        manager.start()
        bed.system.create_actor(Counter)
        bed.run(until_ms=bed.sim.now + 5_000.0)
        assert manager.durability is None
        assert bed.system.durability is None
        assert not any(kind.startswith("checkpoint") for kind, _ in events)
        manager.stop()


def fingerprint(seed, durability):
    bed = build_cluster(2, seed=seed)
    manager = make_manager(bed, durability=durability)
    events = record_events(manager)
    manager.start()
    refs = [bed.system.create_actor(Counter) for _ in range(4)]
    client = Client(bed.system)
    rng = bed.streams.stream("load")

    def loop(ref):
        while bed.sim.now < 10_000.0:
            yield client.call(ref, "add", 1)
            _ = rng.random()

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=10_000.0)
    return (tuple(kind for kind, _ in events),
            tuple(lat for _t, lat in client.latencies.samples),
            tuple((e.time_ms, e.src, e.dst) for e in manager.migration_log))


def test_disabled_config_is_bit_identical_to_none():
    """DurabilityConfig(enabled=False) must not perturb the execution —
    the golden-trace guarantee for runs that never opt in."""
    assert fingerprint(11, None) == \
        fingerprint(11, DurabilityConfig(enabled=False))


def test_enabled_run_diverges_only_in_durability_events():
    base = fingerprint(11, None)
    durable = fingerprint(11, DurabilityConfig(
        enabled=True, checkpoint_interval_ms=1_000.0,
        serialize_cpu_ms=0.0))
    stripped = tuple(kind for kind in durable[0]
                     if not kind.startswith("checkpoint"))
    assert stripped == base[0]
    assert durable[1] == base[1]  # zero-cost checkpoints: same latencies


# -- protocol -----------------------------------------------------------


def run_durable(durability, until_ms=10_000.0, servers=3, load=True):
    bed = build_cluster(servers, seed=5)
    manager = make_manager(bed, durability=durability,
                           suspicion_timeout_ms=2_500.0)
    events = record_events(manager)
    refs = [bed.system.create_actor(Counter, server=bed.servers[0])
            for _ in range(2)]
    manager.start()
    if load:
        client = Client(bed.system)

        def loop(ref):
            while bed.sim.now < until_ms:
                yield client.call(ref, "add", 1)

        for ref in refs:
            spawn(bed.sim, loop(ref))
    bed.run(until_ms=until_ms)
    return bed, manager, refs, events


def test_baseline_and_periodic_checkpoints():
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=1_000.0)
    bed, manager, refs, events = run_durable(config)
    written = [d for k, d in events if k == "checkpoint-written"]
    acked = [d for k, d in events if k == "checkpoint-replicated"]
    # Pre-start actors got a baseline write; busy actors keep getting
    # periodic ones, each eventually acknowledged.
    assert [d["trigger"] for d in written[:2]] == ["baseline", "baseline"]
    assert sum(1 for d in written if d["trigger"] == "periodic") > 5
    assert len(acked) > 5
    assert manager.durability.store.checkpoints_acked == len(acked)
    # Replication happened to peers, never to the writer itself.
    host = bed.servers[0].name
    for d in written:
        assert d["replicas"], "no replica chosen"
        assert host not in d["replicas"]
    # Acks strictly follow writes, never outrun them.
    totals = manager.durability.summary()["totals"]
    assert totals["checkpoints_acked"] <= totals["checkpoints_written"]


def test_idle_actors_are_not_rewritten():
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=1_000.0)
    _bed, manager, refs, events = run_durable(config, load=False)
    written = [d for k, d in events if k == "checkpoint-written"]
    # Nothing dirtied the actors after the baseline: one write each.
    assert len(written) == len(refs)


def test_dirty_threshold_triggers_immediate_checkpoint():
    config = DurabilityConfig(enabled=True,
                              checkpoint_interval_ms=60_000.0,
                              dirty_message_threshold=5)
    _bed, manager, refs, events = run_durable(config, until_ms=5_000.0)
    triggers = [d["trigger"] for k, d in events
                if k == "checkpoint-written"]
    assert "dirty" in triggers
    assert "periodic" not in triggers  # interval never elapsed


def test_replication_charges_nic_meters():
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=500.0,
                              replication_factor=2)
    bed, manager, _refs, _events = run_durable(config, load=True)
    assert manager.durability.store.bytes_replicated > 0
    # Replica servers hosted no actors; any NIC traffic there is
    # checkpoint copies landing.
    assert any(server.net_meter.lifetime_total > 0
               for server in bed.servers[1:])


def test_host_crash_aborts_inflight_writes():
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=500.0,
                              # Slow the copies down so some are in
                              # flight at crash time.
                              snapshot_fraction=1.0)
    bed, manager, refs, events = run_durable(config, until_ms=3_000.0)
    crash_at = bed.sim.now
    victim = bed.servers[0]
    bed.system.crash_server(victim)
    bed.run(until_ms=crash_at + 8_000.0)
    store = manager.durability.store
    # Acked count never includes writes whose source died mid-flight.
    assert store.checkpoints_acked < store.checkpoints_written
    assert store.checkpoints_lost > 0


def test_replica_holder_crash_discards_its_copies():
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=500.0,
                              replication_factor=2)
    bed, manager, _refs, _events = run_durable(config, until_ms=3_000.0)
    crash_at = bed.sim.now
    # The actors live on servers[0]; its replicas are peers — crash one
    # of those and every copy it stored must become unreadable.
    bed.system.crash_server(bed.servers[1])
    bed.run(until_ms=crash_at + 2_000.0)
    assert manager.durability.store.replicas_discarded > 0


def test_replica_choice_is_deterministic_and_spread():
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=500.0,
                              replication_factor=1)
    bed, manager, _refs, _events = run_durable(config)
    choose = manager.durability._choose_replicas
    first = choose(bed.servers[0])
    assert first == choose(bed.servers[0])
    assert bed.servers[0] not in first
    # Different hosts rotate to different peers (the offset spreads
    # copies without randomness).
    assert choose(bed.servers[1]) != choose(bed.servers[2])


def test_stop_detaches_cleanly():
    config = DurabilityConfig(enabled=True, checkpoint_interval_ms=500.0)
    bed, manager, _refs, events = run_durable(config, until_ms=2_000.0)
    assert bed.system.durability is manager.durability
    manager.stop()
    assert manager.durability is None
    assert bed.system.durability is None
    count = len(events)
    bed.system.create_actor(Counter)
    bed.run(until_ms=bed.sim.now + 3_000.0)
    assert not any(kind.startswith("checkpoint")
                   for kind, _ in events[count:])
