"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator, StopSimulation


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 5.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    seen = []
    for label in ("first", "second", "third"):
        sim.schedule(2.0, seen.append, label)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_zero_delay_runs_at_current_time():
    sim = Simulator()
    seen = []

    def outer():
        sim.schedule(0.0, seen.append, sim.now)

    sim.schedule(4.0, outer)
    sim.run()
    assert seen == [4.0]
    assert sim.now == 4.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(7.5, seen.append, "x")
    sim.run()
    assert seen == ["x"]
    assert sim.now == 7.5


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    final = sim.run(until=10.0)
    assert final == 10.0
    assert sim.now == 10.0


def test_run_until_does_not_run_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "early")
    sim.schedule(20.0, seen.append, "late")
    sim.run(until=10.0)
    assert seen == ["early"]
    sim.run()
    assert seen == ["early", "late"]


def test_stop_simulation_exception_halts():
    sim = Simulator()
    seen = []

    def boom():
        raise StopSimulation()

    sim.schedule(1.0, seen.append, "before")
    sim.schedule(2.0, boom)
    sim.schedule(3.0, seen.append, "after")
    sim.run()
    assert seen == ["before"]


def test_stop_method_halts_after_current_callback():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, sim.stop)
    sim.schedule(2.0, seen.append, "never")
    sim.run()
    assert seen == []
    assert sim.now == 1.0


def test_peek_and_pending_events():
    sim = Simulator()
    assert sim.peek() is None
    assert sim.pending_events() == 0
    sim.schedule(2.0, lambda: None)
    sim.schedule(9.0, lambda: None)
    assert sim.peek() == 2.0
    assert sim.pending_events() == 2


def test_nested_run_is_rejected():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1
