"""Unit tests for deterministic named random streams."""

from repro.sim import RandomStreams


def test_same_name_returns_same_stream():
    streams = RandomStreams(seed=1)
    assert streams.stream("a") is streams.stream("a")


def test_streams_are_reproducible_across_instances():
    first = RandomStreams(seed=42).stream("clients")
    second = RandomStreams(seed=42).stream("clients")
    assert [first.random() for _ in range(5)] == \
        [second.random() for _ in range(5)]


def test_different_names_give_different_sequences():
    streams = RandomStreams(seed=42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_sequences():
    a = RandomStreams(seed=1).stream("x").random()
    b = RandomStreams(seed=2).stream("x").random()
    assert a != b


def test_adding_a_stream_does_not_perturb_existing_ones():
    reference = RandomStreams(seed=7)
    ref_values = [reference.stream("main").random() for _ in range(3)]

    mixed = RandomStreams(seed=7)
    mixed.stream("newcomer").random()  # interleaved consumer
    values = [mixed.stream("main").random() for _ in range(3)]
    assert values == ref_values


def test_fork_derives_independent_family():
    base = RandomStreams(seed=3)
    fork_a = base.fork("rep1")
    fork_b = base.fork("rep2")
    assert fork_a.stream("x").random() != fork_b.stream("x").random()
    # Forks are themselves reproducible.
    again = RandomStreams(seed=3).fork("rep1")
    assert again.stream("x").random() == \
        RandomStreams(seed=3).fork("rep1").stream("x").random()
