"""Differential harness: heap kernel vs calendar kernel.

The calendar-queue kernel is only admissible if it is *indistinguishable*
from the reference heap kernel: same callbacks, in the same order, at the
same ``now``, for any schedule.  These tests run randomized seeded
schedule programs against both kernels and diff the full pop trajectory.
Shapes are chosen to hit every storage class of the calendar kernel:

- **dense** sub-bucket delays (active-bucket bisect drains),
- **sparse** multi-second gaps (the ladder/spill fallback, including the
  horizon-doubling adaptation),
- **same-timestamp bursts** (FIFO tie-break across bucket, spill and
  zero-delay storage for one instant),
- **cancel-heavy** periodic timers (``every``/cancel interleavings),
- stepped ``run(until=...)`` and mid-run ``stop()``.

Callbacks draw from a per-run ``random.Random(seed)``: both kernels make
identical draws *because* they fire callbacks in identical order, so any
ordering divergence snowballs into an obvious log mismatch.
"""

import os
import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import (DEFAULT_SCHEDULER, CalendarSimulator,
                              HeapSimulator, SimulationError)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

KERNELS = ("heap", "calendar")

# Delay menus per shape.  Values are chosen to straddle the calendar
# kernel's 1.0 ms bucket width: same-bucket, adjacent-bucket, far-bucket.
DENSE_DELAYS = (0.0, 0.0, 0.01, 0.07, 0.3, 0.5, 0.77, 1.0, 1.5, 2.25)
SPARSE_DELAYS = (0.0, 1.0, 2.5, 40.0, 400.0, 3_000.0, 25_000.0)
BURST_DELAYS = (0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 5.0, 10.0)


def run_program(scheduler, seed, delays, initial=40, budget=2_500,
                fanout=3, with_timers=False, until_steps=None):
    """Run one randomized schedule program; return its full trajectory.

    The trajectory records, for every fired event, ``(event id, now,
    pending count)`` — callback identity, firing time, and a queue-size
    probe — plus the periodic-timer fires and the final clock.
    """
    sim = Simulator(scheduler=scheduler)
    rng = random.Random(seed)
    log = []
    state = {"next_id": 0, "scheduled": 0}

    def fire(ident):
        log.append((ident, sim.now, sim.pending_events()))
        for _ in range(rng.randrange(fanout + 1)):
            if state["scheduled"] >= budget:
                return
            state["scheduled"] += 1
            state["next_id"] += 1
            child = state["next_id"]
            delay = rng.choice(delays)
            if rng.random() < 0.1:
                sim.schedule_at(sim.now + delay, fire, child)
            else:
                sim.schedule(delay, fire, child)

    for _ in range(initial):
        state["scheduled"] += 1
        state["next_id"] += 1
        sim.schedule(rng.choice(delays), fire, state["next_id"])

    cancels = []
    if with_timers:
        for index in range(10):
            period = 3.0 + (index % 7)
            cancel = sim.every(period, lambda i=index: log.append(
                ("timer", i, sim.now)))
            cancels.append(cancel)
        # Cancel a few timers from inside the run, at seeded times.
        for index in (1, 4, 7):
            sim.schedule(50.0 * (index + 1), cancels[index])

    if until_steps is None:
        final = sim.run()
    else:
        final = sim.now
        for step in until_steps:
            final = sim.run(until=final + step)
    for cancel in cancels:
        cancel()  # stop periodic timers so an unbounded run terminates
    if until_steps is not None:
        sim.run()  # drain the tail for a complete comparison
    log.append(("final", sim.now, sim.pending_events()))
    return log, final


def assert_kernels_agree(**kwargs):
    reference = run_program("heap", **kwargs)
    candidate = run_program("calendar", **kwargs)
    assert candidate == reference


@pytest.mark.parametrize("seed", [42, 7, 101, 2024, 555])
def test_dense_schedules_identical(seed):
    assert_kernels_agree(seed=seed, delays=DENSE_DELAYS)


@pytest.mark.parametrize("seed", [42, 7, 101, 2024, 555])
def test_sparse_schedules_identical(seed):
    assert_kernels_agree(seed=seed, delays=SPARSE_DELAYS, budget=1_500)


@pytest.mark.parametrize("seed", [42, 7, 101, 2024, 555])
def test_same_timestamp_bursts_identical(seed):
    assert_kernels_agree(seed=seed, delays=BURST_DELAYS)


@pytest.mark.parametrize("seed", [42, 7, 101])
def test_cancel_heavy_timer_schedules_identical(seed):
    # Bounded run: un-cancelled periodic timers never drain on their own.
    assert_kernels_agree(seed=seed, delays=DENSE_DELAYS, budget=800,
                         with_timers=True, until_steps=[200.0, 300.0])


@pytest.mark.parametrize("seed", [42, 7, 101])
def test_stepped_until_runs_identical(seed):
    # Stepped run(until=...) exercises the bounded-run boundary: events
    # due exactly at the limit fire, the clock parks exactly on `until`.
    assert_kernels_agree(seed=seed, delays=SPARSE_DELAYS, budget=600,
                         until_steps=[7.0, 0.0, 13.5, 250.0, 9_000.0])


@pytest.mark.parametrize("scheduler", KERNELS)
def test_stop_mid_run_leaves_identical_state(scheduler):
    sim = Simulator(scheduler=scheduler)
    seen = []
    for index in range(20):
        sim.schedule(float(index), seen.append, index)
    sim.schedule(10.0, sim.stop)
    sim.run()
    # stop() halts after the current callback; events 0..10 fired (the
    # stop callback was scheduled after index 10's event, same instant).
    assert seen == list(range(11))
    assert sim.now == 10.0
    remaining = sim.pending_events()
    sim.run()
    assert seen == list(range(20))
    assert remaining == 9


@pytest.mark.parametrize("scheduler", KERNELS)
def test_peek_tracks_next_event(scheduler):
    sim = Simulator(scheduler=scheduler)
    assert sim.peek() is None
    sim.schedule(5.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.peek() == 2.0
    probes = []
    sim.schedule(2.0, lambda: probes.append(sim.peek()))
    sim.run(until=2.0)
    # During the probe the 5.0 event is next-up; afterwards it still is.
    assert probes == [5.0]
    assert sim.peek() == 5.0
    sim.run()
    assert sim.peek() is None


def test_default_scheduler_dispatch():
    # The default kernel follows $REPRO_SIM_SCHEDULER (calendar unless
    # overridden) so the whole suite can be re-run on the heap kernel.
    assert DEFAULT_SCHEDULER == os.environ.get(
        "REPRO_SIM_SCHEDULER", "calendar")
    assert Simulator().scheduler_name == DEFAULT_SCHEDULER
    assert isinstance(Simulator(scheduler="calendar"), CalendarSimulator)
    assert isinstance(Simulator(scheduler="heap"), HeapSimulator)
    with pytest.raises(SimulationError):
        Simulator(scheduler="splay-tree")


@pytest.mark.parametrize("scheduler", KERNELS)
def test_direct_kernel_construction(scheduler):
    cls = {"heap": HeapSimulator, "calendar": CalendarSimulator}[scheduler]
    sim = cls()
    assert sim.scheduler_name == scheduler
    with pytest.raises(SimulationError):
        cls(scheduler="heap" if scheduler == "calendar" else "calendar")


def test_calendar_bucket_width_knob():
    sim = CalendarSimulator(bucket_width_ms=0.25)
    seen = []
    for index in range(8):
        sim.schedule(index * 0.1, seen.append, index)
    sim.run()
    assert seen == list(range(8))
    with pytest.raises(SimulationError):
        CalendarSimulator(bucket_width_ms=0.0)


def test_calendar_horizon_adapts_on_sparse_schedules():
    sim = CalendarSimulator()
    for index in range(64):
        sim.schedule(1_000.0 * (index + 1), lambda: None)
    sim.run()
    # Every activation held one event, so the ladder horizon doubled
    # until sparse traffic stopped paying bucket bookkeeping.
    assert sim._horizon > 1


if HAVE_HYPOTHESIS:

    @given(st.lists(
        st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 7.5]),
        min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_fifo_tie_break_property(delays):
        """Events at equal timestamps fire in insertion order — on both
        kernels, for arbitrary quantized schedules."""
        logs = {}
        for scheduler in KERNELS:
            sim = Simulator(scheduler=scheduler)
            log = logs[scheduler] = []
            for order, delay in enumerate(delays):
                sim.schedule(delay, log.append, (delay, order))
            sim.run()
        for scheduler, log in logs.items():
            by_time = {}
            for delay, order in log:
                by_time.setdefault(delay, []).append(order)
            for delay, orders in by_time.items():
                assert orders == sorted(orders), (scheduler, delay)
        assert logs["heap"] == logs["calendar"]

    @given(st.integers(min_value=0, max_value=2**31),
           st.sampled_from([DENSE_DELAYS, SPARSE_DELAYS, BURST_DELAYS]))
    @settings(max_examples=25, deadline=None)
    def test_random_programs_identical_property(seed, delays):
        assert_kernels_agree(seed=seed, delays=delays, initial=10,
                             budget=300)
