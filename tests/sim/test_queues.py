"""Unit tests for the blocking FIFO queue."""

import pytest

from repro.sim import Queue, Simulator, Timeout, spawn


def test_put_then_get_returns_item():
    sim = Simulator()
    queue = Queue(sim)
    queue.put("x")
    seen = []

    def body():
        item = yield queue.get()
        seen.append(item)

    spawn(sim, body())
    sim.run()
    assert seen == ["x"]


def test_get_blocks_until_put():
    sim = Simulator()
    queue = Queue(sim)
    seen = []

    def consumer():
        item = yield queue.get()
        seen.append((sim.now, item))

    spawn(sim, consumer())
    sim.schedule(9.0, queue.put, "late")
    sim.run()
    assert seen == [(9.0, "late")]


def test_fifo_order_for_items_and_getters():
    sim = Simulator()
    queue = Queue(sim)
    seen = []

    def consumer(name):
        item = yield queue.get()
        seen.append((name, item))

    spawn(sim, consumer("g1"))
    spawn(sim, consumer("g2"))
    sim.schedule(1.0, queue.put, "first")
    sim.schedule(2.0, queue.put, "second")
    sim.run()
    assert seen == [("g1", "first"), ("g2", "second")]


def test_len_and_get_nowait():
    sim = Simulator()
    queue = Queue(sim)
    queue.put(1)
    queue.put(2)
    assert len(queue) == 2
    assert queue.get_nowait() == 1
    assert len(queue) == 1


def test_get_nowait_empty_raises():
    sim = Simulator()
    queue = Queue(sim)
    with pytest.raises(IndexError):
        queue.get_nowait()


def test_clear_returns_and_drops_items():
    sim = Simulator()
    queue = Queue(sim)
    queue.put("a")
    queue.put("b")
    assert queue.clear() == ["a", "b"]
    assert len(queue) == 0


def test_peek_all_does_not_consume():
    sim = Simulator()
    queue = Queue(sim)
    queue.put("a")
    assert queue.peek_all() == ["a"]
    assert len(queue) == 1


def test_producer_consumer_pipeline():
    sim = Simulator()
    queue = Queue(sim)
    consumed = []

    def producer():
        for index in range(5):
            yield Timeout(sim, 2.0)
            queue.put(index)

    def consumer():
        for _ in range(5):
            item = yield queue.get()
            consumed.append((sim.now, item))

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert consumed == [(2.0, 0), (4.0, 1), (6.0, 2), (8.0, 3), (10.0, 4)]


def test_clear_reclaims_inflight_delivery():
    """Regression: an item handed to a getter in the current timestamp
    (but not yet delivered — the zero-delay hop) must be reclaimed by
    ``clear()``, not delivered stale afterwards.

    The old implementation only dropped queued items: the destroy/clear
    +repopulate pattern used by ``destroy_actor`` could hand a waiting
    dispatcher an item that ``clear()`` claimed to have returned.
    """
    sim = Simulator()
    queue = Queue(sim)
    seen = []
    cleared = []

    def consumer():
        while True:
            item = yield queue.get()
            seen.append((sim.now, item))

    spawn(sim, consumer())

    def put_then_clear():
        # The waiting getter is woken synchronously by put(), but the
        # item is still in flight when clear() runs a moment later in
        # the same timestamp.
        queue.put("stale")
        cleared.append(queue.clear())
        queue.put("fresh")

    sim.schedule(5.0, put_then_clear)
    sim.run()
    # clear() owns the in-flight item; the getter never observes it and
    # is re-registered in time to receive the next put.
    assert cleared == [["stale"]]
    assert seen == [(5.0, "fresh")]


def test_clear_orders_inflight_before_queued_items():
    sim = Simulator()
    queue = Queue(sim)

    def consumer():
        yield queue.get()

    spawn(sim, consumer())
    collected = []

    def fill_then_clear():
        queue.put("inflight")   # woken getter, delivery pending
        queue.put("queued-1")   # no getters left: plain backlog
        queue.put("queued-2")
        collected.append(queue.clear())

    sim.schedule(1.0, fill_then_clear)
    sim.run()
    assert collected == [["inflight", "queued-1", "queued-2"]]
    assert len(queue) == 0


def test_clear_restores_reclaimed_getter_ahead_of_younger_waiters():
    sim = Simulator()
    queue = Queue(sim)
    seen = []

    def consumer(name):
        item = yield queue.get()
        seen.append((name, item))

    spawn(sim, consumer("old"))
    spawn(sim, consumer("new"))  # younger waiter, behind "old"

    def scramble():
        queue.put("reclaimed")  # wakes "old"; delivery is in flight
        queue.clear()           # reclaims it; "old" goes back to the front
        queue.put("first")
        queue.put("second")

    sim.schedule(1.0, scramble)
    sim.run()
    assert seen == [("old", "first"), ("new", "second")]


def test_interrupted_getter_loses_no_items():
    sim = Simulator()
    queue = Queue(sim)
    seen = []

    def impatient():
        try:
            yield queue.get()
        except BaseException:
            pass

    def patient():
        item = yield queue.get()
        seen.append(item)

    proc = spawn(sim, impatient())
    spawn(sim, patient())
    sim.schedule(1.0, proc.interrupt)
    sim.schedule(2.0, queue.put, "only")
    sim.run()
    # The interrupted getter was unsubscribed; the patient one gets it.
    assert seen == ["only"]
