"""Unit tests for generator processes and waitables."""

import pytest

from repro.sim import (AllOf, Interrupted, Process, Signal, SimulationError,
                       Simulator, Timeout, spawn)


def test_timeout_resumes_with_value():
    sim = Simulator()
    seen = []

    def body():
        value = yield Timeout(sim, 5.0, value="hello")
        seen.append((sim.now, value))

    spawn(sim, body())
    sim.run()
    assert seen == [(5.0, "hello")]


def test_process_return_value_and_finished():
    sim = Simulator()

    def body():
        yield Timeout(sim, 1.0)
        return 42

    process = spawn(sim, body())
    sim.run()
    assert process.finished
    assert process.result == 42
    assert process.exception is None


def test_waiting_on_a_process_gets_its_result():
    sim = Simulator()
    seen = []

    def child():
        yield Timeout(sim, 3.0)
        return "child-result"

    def parent():
        result = yield spawn(sim, child())
        seen.append((sim.now, result))

    spawn(sim, parent())
    sim.run()
    assert seen == [(3.0, "child-result")]


def test_signal_broadcast_resumes_all_waiters():
    sim = Simulator()
    signal = Signal(sim)
    seen = []

    def waiter(name):
        value = yield signal
        seen.append((name, value))

    spawn(sim, waiter("a"))
    spawn(sim, waiter("b"))
    sim.schedule(10.0, signal.trigger, "go")
    sim.run()
    assert sorted(seen) == [("a", "go"), ("b", "go")]


def test_signal_triggered_twice_keeps_first_value():
    sim = Simulator()
    signal = Signal(sim)
    signal.trigger("first")
    signal.trigger("second")
    assert signal.value == "first"


def test_waiting_on_triggered_signal_resumes_immediately():
    sim = Simulator()
    signal = Signal(sim)
    signal.trigger("pre")
    seen = []

    def body():
        value = yield signal
        seen.append((sim.now, value))

    spawn(sim, body())
    sim.run()
    assert seen == [(0.0, "pre")]


def test_signal_reset_rearms():
    sim = Simulator()
    signal = Signal(sim)
    signal.trigger(1)
    signal.reset()
    assert not signal.triggered
    signal.trigger(2)
    assert signal.value == 2


def test_interrupt_raises_inside_process():
    sim = Simulator()
    seen = []

    def body():
        try:
            yield Timeout(sim, 100.0)
        except Interrupted as exc:
            seen.append((sim.now, exc.cause))

    process = spawn(sim, body())
    sim.schedule(5.0, process.interrupt, "because")
    sim.run()
    assert seen == [(5.0, "because")]


def test_uncaught_interrupt_finishes_process():
    sim = Simulator()

    def body():
        yield Timeout(sim, 100.0)

    process = spawn(sim, body())
    sim.schedule(5.0, process.interrupt)
    sim.run()
    assert process.finished
    assert isinstance(process.exception, Interrupted)


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def body():
        yield Timeout(sim, 1.0)

    process = spawn(sim, body())
    sim.run()
    process.interrupt()  # must not raise
    assert process.finished


def test_allof_waits_for_every_child():
    sim = Simulator()
    seen = []

    def body():
        results = yield AllOf(sim, [Timeout(sim, 3.0, "a"),
                                    Timeout(sim, 7.0, "b"),
                                    Timeout(sim, 5.0, "c")])
        seen.append((sim.now, results))

    spawn(sim, body())
    sim.run()
    assert seen == [(7.0, ["a", "b", "c"])]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    seen = []

    def body():
        results = yield AllOf(sim, [])
        seen.append(results)

    spawn(sim, body())
    sim.run()
    assert seen == [[]]


def test_yielding_non_waitable_raises():
    sim = Simulator()

    def body():
        yield 42

    spawn(sim, body())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_exception_propagates():
    sim = Simulator()

    def body():
        yield Timeout(sim, 1.0)
        raise ValueError("boom")

    process = spawn(sim, body())
    with pytest.raises(ValueError):
        sim.run()
    assert isinstance(process.exception, ValueError)


def test_non_generator_body_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_interleaved_processes_share_the_clock():
    sim = Simulator()
    trace = []

    def ticker(name, step, count):
        for _ in range(count):
            yield Timeout(sim, step)
            trace.append((sim.now, name))

    spawn(sim, ticker("slow", 10.0, 2))
    spawn(sim, ticker("fast", 4.0, 4))
    sim.run()
    assert trace == [(4.0, "fast"), (8.0, "fast"), (10.0, "slow"),
                     (12.0, "fast"), (16.0, "fast"), (20.0, "slow")]
