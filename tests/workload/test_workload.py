"""Unit tests for workload distributions, schedules and client loops."""

import random

import pytest

from repro.actors import Actor, ActorSystem, Client
from repro.cluster import Provisioner
from repro.sim import Simulator
from repro.workload import (WeightedChoice, cascade_split, constant_schedule,
                            hot_one_split, normal_wave_schedule,
                            round_join_schedule, start_closed_loop,
                            zipf_weights)


def test_hot_one_split_shape():
    weights = hot_one_split(4, 0.5)
    assert weights[0] == pytest.approx(0.5)
    assert weights[1:] == [pytest.approx(0.5 / 3)] * 3
    assert sum(weights) == pytest.approx(1.0)


def test_hot_one_split_validation():
    with pytest.raises(ValueError):
        hot_one_split(0, 0.5)
    with pytest.raises(ValueError):
        hot_one_split(4, 1.5)
    assert hot_one_split(1, 0.9) == [1.0]


def test_cascade_split_matches_paper_description():
    weights = cascade_split(40, 0.35)
    # "The first root partition receives 35% of total requests; the
    # second receives 35% of the remaining 65%..."
    assert weights[0] == pytest.approx(0.35)
    assert weights[1] == pytest.approx(0.65 * 0.35)
    assert weights[2] == pytest.approx(0.65 * 0.65 * 0.35)
    assert sum(weights) == pytest.approx(1.0)


def test_zipf_weights_normalized_and_decreasing():
    weights = zipf_weights(10, 1.0)
    assert sum(weights) == pytest.approx(1.0)
    assert all(a > b for a, b in zip(weights, weights[1:]))


def test_weighted_choice_respects_weights():
    rng = random.Random(3)
    picker = WeightedChoice(["hot", "cold"], [0.9, 0.1], rng)
    picks = [picker.pick() for _ in range(2000)]
    assert 0.85 < picks.count("hot") / len(picks) < 0.95


def test_weighted_choice_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        WeightedChoice([], [], rng)
    with pytest.raises(ValueError):
        WeightedChoice(["a"], [1.0, 2.0], rng)
    with pytest.raises(ValueError):
        WeightedChoice(["a"], [-1.0], rng)
    with pytest.raises(ValueError):
        WeightedChoice(["a", "b"], [0.0, 0.0], rng)


def test_normal_wave_schedule_invariants():
    rng = random.Random(7)
    schedule = normal_wave_schedule(64, 120_000.0, 90_000.0,
                                    1_140_000.0, 90_000.0, rng)
    assert len(schedule) == 64
    for join, leave in schedule:
        assert join >= 0.0
        assert leave > join


def test_round_join_schedule_buckets_clients():
    rng = random.Random(7)
    joins = round_join_schedule(32, 4, 180_000.0, rng)
    assert len(joins) == 32
    assert joins == sorted(joins)
    for round_index in range(4):
        start = round_index * 180_000.0
        in_round = [j for j in joins if start <= j < start + 180_000.0]
        assert len(in_round) == 8


def test_round_join_uneven_split():
    joins = round_join_schedule(10, 3, 100.0, random.Random(1))
    assert len(joins) == 10
    with pytest.raises(ValueError):
        round_join_schedule(10, 0, 100.0, random.Random(1))


def test_constant_schedule():
    assert constant_schedule(3) == [0.0, 0.0, 0.0]


class Echo(Actor):
    def ping(self):
        yield self.compute(0.5)
        return "pong"


def test_closed_loop_driver_records_latencies():
    sim = Simulator()
    prov = Provisioner(sim)
    prov.boot_server(immediate=True)
    sim.run()
    system = ActorSystem(sim, prov)
    ref = system.create_actor(Echo)
    client = Client(system)
    start_closed_loop(client, lambda: (ref, "ping", ()),
                      think_ms=10.0, until_ms=1_000.0,
                      start_delay_ms=100.0)
    sim.run(until=1_200.0)
    assert client.completed > 10
    # First sample happens after the start delay.
    assert client.latencies.samples[0][0] >= 100.0
