"""Unit tests for the EPL tokenizer."""

import pytest

from repro.core.epl import EplSyntaxError, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source) if token.kind != "EOF"]


def test_simple_rule_tokens():
    tokens = tokenize("server.cpu.perc > 80 => balance({W}, cpu);")
    assert [t.kind for t in tokens] == [
        "IDENT", "DOT", "IDENT", "DOT", "IDENT", "COMP", "NUMBER",
        "ARROW", "IDENT", "LPAREN", "LBRACE", "IDENT", "RBRACE",
        "COMMA", "IDENT", "RPAREN", "SEMI", "EOF"]


def test_all_comparison_operators():
    assert texts("< > <= >=") == ["<", ">", "<=", ">="]
    assert kinds("< > <= >=")[:-1] == ["COMP"] * 4


def test_arrow_not_confused_with_comparison():
    tokens = tokenize("=>")
    assert tokens[0].kind == "ARROW"


def test_numbers_integer_and_decimal():
    tokens = tokenize("80 3.5 0.25")
    values = [t.text for t in tokens if t.kind == "NUMBER"]
    assert values == ["80", "3.5", "0.25"]


def test_malformed_number_rejected():
    with pytest.raises(EplSyntaxError):
        tokenize("1.2.3")


def test_comments_are_skipped():
    source = """
    # a hash comment
    server.cpu.perc > 80 // trailing comment
    => pin(A);
    """
    assert "pin" in texts(source)
    assert "#" not in texts(source)


def test_line_and_column_tracking():
    tokens = tokenize("a\n  bb")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_identifiers_with_underscores_and_digits():
    assert texts("my_var2 _x") == ["my_var2", "_x"]


def test_unexpected_character_reports_location():
    with pytest.raises(EplSyntaxError) as excinfo:
        tokenize("a @ b")
    assert excinfo.value.line == 1
    assert excinfo.value.column == 3


def test_empty_source_has_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "EOF"
