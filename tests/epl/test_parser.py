"""Unit tests for the EPL parser."""

import pytest

from repro.core.epl import (ActorPattern, AndCond, Balance, CallFeature,
                            Colocate, CompareCond, EplSyntaxError, OrCond,
                            Pin, RefCond, Reserve, ResourceFeature,
                            Separate, TrueCond, parse_policy)


def only_rule(source):
    policy = parse_policy(source)
    assert len(policy) == 1
    return policy.rules[0]


def test_balance_rule():
    rule = only_rule(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Worker}, cpu);")
    assert isinstance(rule.condition, OrCond)
    behavior = rule.behaviors[0]
    assert isinstance(behavior, Balance)
    assert behavior.actor_types == ("Worker",)
    assert behavior.resource == "cpu"


def test_balance_multiple_types():
    rule = only_rule("true => balance({A, B, C}, net);")
    assert rule.behaviors[0].actor_types == ("A", "B", "C")


def test_metadata_rule_full_shape():
    rule = only_rule("""
        server.cpu.perc > 80 and
        client.call(Folder(fo).open).perc > 40 and
        File(fi) in ref(fo.files) =>
            reserve(fo, cpu); colocate(fo, fi);
    """)
    # condition: ((server and call) and ref)
    assert isinstance(rule.condition, AndCond)
    ref_cond = rule.condition.right
    assert isinstance(ref_cond, RefCond)
    assert ref_cond.member == ActorPattern("File", "fi")
    assert ref_cond.container == ActorPattern("fo", None)
    assert ref_cond.property_name == "files"
    assert isinstance(rule.behaviors[0], Reserve)
    assert isinstance(rule.behaviors[1], Colocate)


def test_client_call_feature():
    rule = only_rule("client.call(Folder(f).open).perc > 40 => pin(f);")
    cond = rule.condition
    assert isinstance(cond, CompareCond)
    feature = cond.feature
    assert isinstance(feature, CallFeature)
    assert feature.is_client()
    assert feature.callee == ActorPattern("Folder", "f")
    assert feature.function == "open"
    assert feature.stat == "perc"


def test_actor_caller_call_feature():
    rule = only_rule(
        "VideoStream(v).call(UserInfo(u).track).count > 0 "
        "=> pin(v); colocate(v, u);")
    feature = rule.condition.feature
    assert isinstance(feature, CallFeature)
    assert feature.caller == ActorPattern("VideoStream", "v")
    assert feature.callee == ActorPattern("UserInfo", "u")
    assert feature.stat == "count"
    assert isinstance(rule.behaviors[0], Pin)
    assert isinstance(rule.behaviors[1], Colocate)


def test_actor_resource_feature():
    rule = only_rule("Partition(p).cpu.perc > 30 => reserve(p, cpu);")
    feature = rule.condition.feature
    assert isinstance(feature, ResourceFeature)
    assert feature.entity == ActorPattern("Partition", "p")
    assert feature.resource == "cpu"


def test_true_condition_and_pin():
    rule = only_rule("true => pin(MovieReview(m));")
    assert isinstance(rule.condition, TrueCond)
    assert rule.behaviors[0].target == ActorPattern("MovieReview", "m")


def test_separate_behavior():
    rule = only_rule("true => separate(A(x), B(y));")
    behavior = rule.behaviors[0]
    assert isinstance(behavior, Separate)
    assert behavior.first == ActorPattern("A", "x")
    assert behavior.second == ActorPattern("B", "y")


def test_multiple_rules_parse():
    policy = parse_policy("""
        true => pin(A(a));
        server.cpu.perc > 90 => balance({B}, cpu);
    """)
    assert len(policy) == 2
    assert policy.rules[0].line < policy.rules[1].line


def test_parenthesized_condition():
    rule = only_rule(
        "(server.cpu.perc > 80 or server.cpu.perc < 60) and true "
        "=> balance({W}, mem);")
    assert isinstance(rule.condition, AndCond)
    assert isinstance(rule.condition.left, OrCond)


def test_precedence_and_binds_tighter_than_or():
    rule = only_rule(
        "true or true and server.net.perc > 50 => pin(A(a));")
    assert isinstance(rule.condition, OrCond)
    assert isinstance(rule.condition.right, AndCond)


def test_decimal_bound():
    rule = only_rule("server.mem.perc > 0.5 => balance({A}, mem);")
    assert rule.condition.value == 0.5


@pytest.mark.parametrize("bad", [
    "server.cpu.perc > 80",                      # missing => and behavior
    "server.cpu.perc 80 => pin(A(a));",          # missing comparison
    "server.disk.perc > 1 => pin(A(a));",        # unknown resource
    "true => hover(A(a));",                      # unknown behavior
    "true => balance(W, cpu);",                  # missing braces
    "true => pin(A(a))",                         # missing semicolon
    "A(x) in ref(y) => pin(x);",                 # ref without property
    "client.call(A.f).total > 1 => pin(A(a));",  # unknown statistic
])
def test_syntax_errors(bad):
    with pytest.raises(EplSyntaxError):
        parse_policy(bad)


def test_error_reports_line_number():
    with pytest.raises(EplSyntaxError) as excinfo:
        parse_policy("true => pin(A(a));\ntrue => bogus(A);")
    assert excinfo.value.line == 2
