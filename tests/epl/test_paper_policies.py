"""Every Table 1 application policy compiles against its actor program.

This is the reproduction of the paper's claim that all ten applications
are covered by small rule sets (Table 1's "Elasticity rules" column).
"""

import pytest

from repro.apps import (BTREE_POLICY, CASSANDRA_POLICY, ESTORE_POLICY,
                        HALO_INTERACTION_POLICY, HALO_RESOURCE_POLICY,
                        MEDIA_ACTOR_CLASSES, MEDIA_POLICY, METADATA_POLICY,
                        PAGERANK_POLICY, PICCOLO_POLICY, ZEXPANDER_POLICY)
from repro.apps.btree import InnerNode, LeafNode
from repro.apps.cassandra import Replica
from repro.apps.estore import Partition
from repro.apps.halo import Player, Router, Session
from repro.apps.metadata import File, Folder
from repro.apps.pagerank import PageRankWorker
from repro.apps.piccolo import PiccoloWorker, Table
from repro.apps.zexpander import CacheLeaf, IndexNode
from repro.core.epl import compile_source

CASES = [
    ("metadata", METADATA_POLICY, [Folder, File], 1),
    ("pagerank", PAGERANK_POLICY, [PageRankWorker], 1),
    ("estore", ESTORE_POLICY, [Partition], 3),
    ("media", MEDIA_POLICY, MEDIA_ACTOR_CLASSES, 6),
    ("halo-interaction", HALO_INTERACTION_POLICY,
     [Router, Session, Player], 1),
    ("halo-resource", HALO_RESOURCE_POLICY, [Router, Session, Player], 1),
    ("btree", BTREE_POLICY, [InnerNode, LeafNode], 2),
    ("piccolo", PICCOLO_POLICY, [PiccoloWorker, Table], 2),
    ("zexpander", ZEXPANDER_POLICY, [IndexNode, CacheLeaf], 1),
    ("cassandra", CASSANDRA_POLICY, [Replica], 1),
]


@pytest.mark.parametrize("name,policy,classes,expected_rules", CASES,
                         ids=[case[0] for case in CASES])
def test_policy_compiles_with_expected_rule_count(name, policy, classes,
                                                  expected_rules):
    compiled = compile_source(policy, classes)
    assert compiled.rule_count() == expected_rules


def test_rule_counts_are_small_as_in_table1():
    # "the low effort with which a multi-actor application can be
    # complemented with PLASMA": no app needs more than 10 rules.
    for _name, policy, classes, _expected in CASES:
        compiled = compile_source(policy, classes)
        assert compiled.rule_count() <= 10


def test_media_policy_warns_about_pin_reserve_conflict():
    # The Media Service both pins and reserves VideoStream actors; the
    # compiler must surface this (paper §4.3: warnings, not errors).
    compiled = compile_source(MEDIA_POLICY, MEDIA_ACTOR_CLASSES)
    assert any("VideoStream" in str(w) for w in compiled.warnings)
