"""Tests for the programmer-specified rule priority extension (§4.3)."""

import pytest

from repro.actors import Actor, ActorRef
from repro.cluster import Server, instance_type
from repro.core.emr import Action, resolve_actions
from repro.core.epl import EplSyntaxError, compile_source, parse_policy
from repro.core.profiling import ActorSnapshot
from repro.sim import Simulator


class Worker(Actor):
    friends: list

    def __init__(self):
        self.friends = []

    def go(self):
        return 1


def test_priority_prefix_parses():
    policy = parse_policy(
        "priority 55: server.cpu.perc > 80 => balance({W}, cpu);")
    assert policy.rules[0].priority == 55


def test_rules_without_prefix_have_no_priority():
    policy = parse_policy("true => pin(W(w));")
    assert policy.rules[0].priority is None


def test_priority_identifier_still_usable_as_type_name():
    # 'priority' not followed by NUMBER ':' is an ordinary identifier.
    policy = parse_policy("true => pin(priority(p));")
    assert policy.rules[0].priority is None


def test_priority_requires_colon():
    with pytest.raises(EplSyntaxError):
        parse_policy("priority 55 server.cpu.perc > 80 "
                     "=> balance({W}, cpu);")


def test_priority_flows_to_compiled_rules_and_config():
    compiled = compile_source(
        "priority 7: Worker(a) in ref(Worker(b).friends) "
        "=> colocate(a, b);", [Worker])
    assert compiled.actor_rules[0].priority == 7
    assert compiled.to_config()["rules"][0]["priority"] == 7


def _snap(actor_id, server):
    return ActorSnapshot(
        ref=ActorRef(actor_id=actor_id, type_name="W"), server=server,
        cpu_perc=1.0, cpu_ms_per_min=10.0, mem_mb=1.0, mem_perc=0.1,
        net_bytes_per_min=0.0, net_perc=0.0)


def test_priority_override_beats_behavior_default():
    sim = Simulator()
    a = Server(sim, instance_type("m5.large"), name="a")
    b = Server(sim, instance_type("m5.large"), name="b")
    c = Server(sim, instance_type("m5.large"), name="c")
    # A colocate with programmer priority 99 must beat a default balance
    # (priority 40) for the same actor.
    colocate = Action(kind="colocate", actor=_snap(1, a), src=a, dst=b,
                      priority_override=99)
    balance = Action(kind="balance", actor=_snap(1, a), src=a, dst=c)
    final = resolve_actions([colocate], [balance])
    assert len(final) == 1
    assert final[0].kind == "colocate"
    assert final[0].priority == 99
