"""Tests for the EPL pretty-printer, including round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (ESTORE_POLICY, HALO_INTERACTION_POLICY,
                        MEDIA_POLICY, METADATA_POLICY, PAGERANK_POLICY)
from repro.core.epl import format_policy, format_rule, parse_policy


def test_formats_canonical_balance_rule():
    policy = parse_policy(
        "server.cpu.perc>80 or server.cpu.perc<60=>balance({W},cpu);")
    assert format_rule(policy.rules[0]) == (
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({W}, cpu);")


def test_formats_mixed_rule_with_all_atom_kinds():
    source = """
    server.cpu.perc > 80 and
    client.call(Folder(fo).open).perc > 40 and
    File(fi) in ref(fo.files) =>
        reserve(fo, cpu); colocate(fo, fi);
    """
    rendered = format_rule(parse_policy(source).rules[0])
    assert rendered == ("server.cpu.perc > 80 and "
                        "client.call(Folder(fo).open).perc > 40 and "
                        "File(fi) in ref(fo.files) "
                        "=> reserve(fo, cpu); colocate(fo, fi);")


def test_parenthesizes_or_inside_and():
    source = ("(server.cpu.perc > 80 or server.net.perc > 80) and true "
              "=> pin(W(w));")
    rendered = format_rule(parse_policy(source).rules[0])
    # Must re-parse to the same tree: the parentheses are load-bearing.
    assert format_policy(parse_policy(rendered)) == \
        format_policy(parse_policy(source))


def test_priority_prefix_round_trips():
    source = "priority 7: true => pin(W(w));"
    rendered = format_rule(parse_policy(source).rules[0])
    assert rendered.startswith("priority 7: ")
    assert format_policy(parse_policy(rendered)) == \
        format_policy(parse_policy(source))


@pytest.mark.parametrize("policy_source", [
    METADATA_POLICY, PAGERANK_POLICY, ESTORE_POLICY, MEDIA_POLICY,
    HALO_INTERACTION_POLICY,
], ids=["metadata", "pagerank", "estore", "media", "halo"])
def test_paper_policies_round_trip(policy_source):
    # Fixed point: rendering is stable after one normalization pass
    # (line numbers differ between parses, so trees are compared by
    # their canonical rendering).
    rendered = format_policy(parse_policy(policy_source))
    assert format_policy(parse_policy(rendered)) == rendered


def test_empty_policy_formats_empty():
    assert format_policy(parse_policy("")) == ""


_ident = st.from_regex(r"[A-Z][a-z]{1,6}", fullmatch=True)
_var = st.from_regex(r"[a-z]{1,4}", fullmatch=True)
_res = st.sampled_from(["cpu", "mem", "net"])
_comp = st.sampled_from(["<", ">", "<=", ">="])
_value = st.integers(min_value=0, max_value=100)


@st.composite
def random_rule_source(draw):
    """Generate structurally varied, syntactically valid rules."""
    type_a = draw(_ident)
    type_b = draw(_ident)
    var_a = draw(_var)
    var_b = draw(_var)
    if var_a == var_b:
        var_b = var_a + "x"
    atoms = [
        f"server.{draw(_res)}.perc {draw(_comp)} {draw(_value)}",
        "true",
        f"client.call({type_a}({var_a}).go).count {draw(_comp)} "
        f"{draw(_value)}",
        f"{type_b}({var_b}) in ref({var_a}.items)",
    ]
    count = draw(st.integers(min_value=1, max_value=3))
    glue = draw(st.lists(st.sampled_from([" and ", " or "]),
                         min_size=count - 1, max_size=count - 1))
    condition = atoms[0]
    for connective, atom in zip(glue, atoms[1:count]):
        condition += connective + atom
    behaviors = draw(st.sampled_from([
        f"balance({{{type_a}}}, {draw(_res)});",
        f"pin({var_a});",
        f"reserve({var_a}, {draw(_res)});",
        f"colocate({var_a}, {var_b}); pin({var_a});",
    ]))
    return f"{condition} => {behaviors}"


@given(random_rule_source())
def test_round_trip_property(source):
    rendered = format_policy(parse_policy(source))
    assert format_policy(parse_policy(rendered)) == rendered


# -- richer corpus: every construct the grammar offers ----------------------

_stat = st.sampled_from(["count", "size", "perc"])


@st.composite
def rich_rule_source(draw):
    """One rule drawing from the full grammar: server and per-actor
    resource features, client and actor-to-actor call features, ref
    joins, parenthesized or-groups, priorities, and every behavior
    (including separate and multi-type balance)."""
    type_a, type_b = draw(_ident), draw(_ident)
    if type_a == type_b:
        type_b += "B"
    var_a, var_b = draw(_var), draw(_var)
    if var_a == var_b:
        var_b += "x"
    atom_pool = [
        "true",
        f"server.{draw(_res)}.{draw(_stat)} {draw(_comp)} {draw(_value)}",
        f"{type_a}({var_a}).{draw(_res)}.perc {draw(_comp)} {draw(_value)}",
        f"client.call({type_a}({var_a}).go).{draw(_stat)} "
        f"{draw(_comp)} {draw(_value)}",
        f"{type_a}({var_a}).call({type_b}({var_b}).sync).{draw(_stat)} "
        f"{draw(_comp)} {draw(_value)}",
        f"{type_b}({var_b}) in ref({type_a}({var_a}).items)",
        f"(server.cpu.perc > {draw(_value)} or "
        f"server.net.perc < {draw(_value)})",
    ]
    count = draw(st.integers(min_value=1, max_value=4))
    picked = draw(st.permutations(atom_pool))[:count]
    glue = draw(st.lists(st.sampled_from([" and ", " or "]),
                         min_size=count - 1, max_size=count - 1))
    condition = picked[0]
    for connective, atom in zip(glue, picked[1:]):
        condition += connective + atom
    behavior_pool = [
        f"balance({{{type_a}}}, {draw(_res)});",
        f"balance({{{type_a}, {type_b}}}, {draw(_res)});",
        f"pin({type_a}({var_a}));",
        f"reserve({var_a}, {draw(_res)});",
        f"colocate({var_a}, {var_b});",
        f"separate({var_a}, {var_b});",
    ]
    behaviors = " ".join(draw(st.permutations(behavior_pool))[
        :draw(st.integers(min_value=1, max_value=2))])
    prefix = ""
    if draw(st.booleans()):
        prefix = f"priority {draw(st.integers(0, 9))}: "
    return f"{prefix}{condition} => {behaviors}"


@st.composite
def random_policy_source(draw):
    """Whole policies: several rules, mixed whitespace between them."""
    rules = draw(st.lists(rich_rule_source(), min_size=1, max_size=4))
    separator = draw(st.sampled_from(["\n", "\n\n", " "]))
    return separator.join(rules)


@settings(derandomize=True, max_examples=150, deadline=None)
@given(rich_rule_source())
def test_rich_rule_round_trip_property(source):
    # pretty(parse(src)) is a fixed point: parsing the rendering and
    # rendering again must reproduce it byte for byte.
    rendered = format_policy(parse_policy(source))
    assert format_policy(parse_policy(rendered)) == rendered


@settings(derandomize=True, max_examples=100, deadline=None)
@given(random_policy_source())
def test_multi_rule_policy_round_trip_property(source):
    policy = parse_policy(source)
    rendered = format_policy(policy)
    reparsed = parse_policy(rendered)
    assert format_policy(reparsed) == rendered
    # Structure survives, not just text: rule count and priorities.
    assert len(reparsed.rules) == len(policy.rules)
    assert [rule.priority for rule in reparsed.rules] == \
        [rule.priority for rule in policy.rules]
