"""Tests for the EPL pretty-printer, including round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.apps import (ESTORE_POLICY, HALO_INTERACTION_POLICY,
                        MEDIA_POLICY, METADATA_POLICY, PAGERANK_POLICY)
from repro.core.epl import format_policy, format_rule, parse_policy


def test_formats_canonical_balance_rule():
    policy = parse_policy(
        "server.cpu.perc>80 or server.cpu.perc<60=>balance({W},cpu);")
    assert format_rule(policy.rules[0]) == (
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({W}, cpu);")


def test_formats_mixed_rule_with_all_atom_kinds():
    source = """
    server.cpu.perc > 80 and
    client.call(Folder(fo).open).perc > 40 and
    File(fi) in ref(fo.files) =>
        reserve(fo, cpu); colocate(fo, fi);
    """
    rendered = format_rule(parse_policy(source).rules[0])
    assert rendered == ("server.cpu.perc > 80 and "
                        "client.call(Folder(fo).open).perc > 40 and "
                        "File(fi) in ref(fo.files) "
                        "=> reserve(fo, cpu); colocate(fo, fi);")


def test_parenthesizes_or_inside_and():
    source = ("(server.cpu.perc > 80 or server.net.perc > 80) and true "
              "=> pin(W(w));")
    rendered = format_rule(parse_policy(source).rules[0])
    # Must re-parse to the same tree: the parentheses are load-bearing.
    assert format_policy(parse_policy(rendered)) == \
        format_policy(parse_policy(source))


def test_priority_prefix_round_trips():
    source = "priority 7: true => pin(W(w));"
    rendered = format_rule(parse_policy(source).rules[0])
    assert rendered.startswith("priority 7: ")
    assert format_policy(parse_policy(rendered)) == \
        format_policy(parse_policy(source))


@pytest.mark.parametrize("policy_source", [
    METADATA_POLICY, PAGERANK_POLICY, ESTORE_POLICY, MEDIA_POLICY,
    HALO_INTERACTION_POLICY,
], ids=["metadata", "pagerank", "estore", "media", "halo"])
def test_paper_policies_round_trip(policy_source):
    # Fixed point: rendering is stable after one normalization pass
    # (line numbers differ between parses, so trees are compared by
    # their canonical rendering).
    rendered = format_policy(parse_policy(policy_source))
    assert format_policy(parse_policy(rendered)) == rendered


def test_empty_policy_formats_empty():
    assert format_policy(parse_policy("")) == ""


_ident = st.from_regex(r"[A-Z][a-z]{1,6}", fullmatch=True)
_var = st.from_regex(r"[a-z]{1,4}", fullmatch=True)
_res = st.sampled_from(["cpu", "mem", "net"])
_comp = st.sampled_from(["<", ">", "<=", ">="])
_value = st.integers(min_value=0, max_value=100)


@st.composite
def random_rule_source(draw):
    """Generate structurally varied, syntactically valid rules."""
    type_a = draw(_ident)
    type_b = draw(_ident)
    var_a = draw(_var)
    var_b = draw(_var)
    if var_a == var_b:
        var_b = var_a + "x"
    atoms = [
        f"server.{draw(_res)}.perc {draw(_comp)} {draw(_value)}",
        "true",
        f"client.call({type_a}({var_a}).go).count {draw(_comp)} "
        f"{draw(_value)}",
        f"{type_b}({var_b}) in ref({var_a}.items)",
    ]
    count = draw(st.integers(min_value=1, max_value=3))
    glue = draw(st.lists(st.sampled_from([" and ", " or "]),
                         min_size=count - 1, max_size=count - 1))
    condition = atoms[0]
    for connective, atom in zip(glue, atoms[1:count]):
        condition += connective + atom
    behaviors = draw(st.sampled_from([
        f"balance({{{type_a}}}, {draw(_res)});",
        f"pin({var_a});",
        f"reserve({var_a}, {draw(_res)});",
        f"colocate({var_a}, {var_b}); pin({var_a});",
    ]))
    return f"{condition} => {behaviors}"


@given(random_rule_source())
def test_round_trip_property(source):
    rendered = format_policy(parse_policy(source))
    assert format_policy(parse_policy(rendered)) == rendered
