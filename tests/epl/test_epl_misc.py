"""Additional EPL edge cases: grammar corners, AST helpers, errors."""

import pytest

from repro.actors import Actor
from repro.core.epl import (ActorPattern, EplError, EplSyntaxError,
                            EplValidationError, EplWarning, compile_source,
                            format_policy, parse_policy)


class Node(Actor):
    links: list

    def __init__(self):
        self.links = []

    def ping(self):
        return 1


def test_actor_pattern_describe():
    assert ActorPattern("Folder", "fo").describe() == "Folder(fo)"
    assert ActorPattern("Folder", None).describe() == "Folder"
    assert ActorPattern(None, "fo").describe() == "fo"
    assert ActorPattern(None, None).describe() == "?"


def test_rule_behavior_kinds():
    policy = parse_policy("true => pin(Node(n)); colocate(n, Node(m));")
    assert policy.rules[0].behavior_kinds() == ("pin", "colocate")


def test_error_hierarchy():
    assert issubclass(EplSyntaxError, EplError)
    assert issubclass(EplValidationError, EplError)
    assert "line 3" in str(EplWarning("boom", line=3))
    assert str(EplWarning("boom")) == "boom"


def test_error_location_rendering():
    error = EplSyntaxError("bad", line=4, column=7)
    assert "line 4" in str(error) and "col 7" in str(error)
    error = EplValidationError("bad", line=4)
    assert "line 4" in str(error)


def test_same_type_both_sides_of_ref():
    compiled = compile_source(
        "Node(a) in ref(Node(b).links) => colocate(a, b);", [Node])
    assert compiled.actor_rules[0].variables == {"a": "Node", "b": "Node"}


def test_keywords_cannot_be_resources():
    with pytest.raises(EplSyntaxError):
        parse_policy("server.gpu.perc > 50 => balance({Node}, cpu);")


def test_chained_behaviors_stop_at_non_behavior():
    policy = parse_policy("""
        true => pin(Node(a));
        true => pin(Node(b));
    """)
    assert len(policy) == 2
    assert len(policy.rules[0].behaviors) == 1


def test_whitespace_and_comment_robustness():
    policy = parse_policy(
        "\n\n  # leading comment\n"
        "true//inline\n=>pin(Node(n));# trailing\n")
    assert len(policy) == 1


def test_number_forms():
    policy = parse_policy(
        "server.cpu.perc > 80.5 => balance({Node}, cpu);")
    assert policy.rules[0].condition.value == 80.5


def test_empty_policy_compiles():
    compiled = compile_source("", [Node])
    assert compiled.rule_count() == 0
    assert compiled.all_rules() == []


def test_unknown_resource_in_behavior_rejected():
    with pytest.raises(EplSyntaxError):
        parse_policy("true => reserve(Node(n), gpu);")


def test_uses_server_features_flag():
    compiled = compile_source(
        "server.cpu.perc > 80 => balance({Node}, cpu);", [Node])
    assert compiled.resource_rules[0].uses_server_features()
    compiled = compile_source(
        "Node(a) in ref(Node(b).links) => colocate(a, b);", [Node])
    assert not compiled.actor_rules[0].uses_server_features()


def test_format_policy_idempotent_on_canonical_form():
    source = "server.cpu.perc > 80 => balance({Node}, cpu);\n"
    once = format_policy(parse_policy(source))
    twice = format_policy(parse_policy(once))
    assert once == twice == source
