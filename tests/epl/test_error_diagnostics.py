"""Negative-path compiler diagnostics.

Table-driven: each case is (policy source, expected exception type,
expected message substring, expected line).  The fuzzer only ever emits
schema-valid policies, so the compiler's rejection paths are pinned here
instead — a diagnostic that silently changes its class, wording, or
location breaks tooling that matches on it (and users who read it).
"""

import pytest

from repro.actors import Actor
from repro.core.epl import compile_source
from repro.core.epl.errors import (EplError, EplSyntaxError,
                                   EplValidationError)


class Folder(Actor):
    children: list

    def __init__(self):
        self.children = []

    def lookup(self, name):
        yield self.compute(0.1)
        return name


class File(Actor):
    def read(self):
        yield self.compute(0.1)
        return b""


CLASSES = [Folder, File]

CASES = [
    # -- lexer ---------------------------------------------------------
    ("server.cpu.perc > 80 € => pin(Folder(f));",
     EplSyntaxError, "unexpected character '€'", 1),
    # -- parser --------------------------------------------------------
    ("server.cpu.perc > => pin(Folder(f));",
     EplSyntaxError, "expected numeric bound", 1),
    ("server.cpu.perc 80 => pin(Folder(f));",
     EplSyntaxError, "expected comparison operator", 1),
    ("true => teleport(Folder(f));",
     EplSyntaxError, "unknown behavior 'teleport'", 1),
    ("true => pin(Folder(f))",
     EplSyntaxError, "expected ';'", 1),
    ("server.gpu.perc > 80 => pin(Folder(f));",
     EplSyntaxError, "expected one of cpu, mem, net, found 'gpu'", 1),
    ("=> pin(Folder(f));",
     EplSyntaxError, "expected a condition, found '=>'", 1),
    # -- validation: actor patterns -----------------------------------
    ("true => pin(Ghost(g));",
     EplValidationError, "unknown actor type 'Ghost'", 1),
    ("client.call(Folder(f).lookup).perc > 10 and "
     "client.call(Folder(f).lookup).perc > 20 => pin(f);",
     EplValidationError, "variable 'f' bound twice", 1),
    ("true => pin(Folder(File));",
     EplValidationError, "variable 'File' shadows an actor type name", 1),
    ("client.call(Folder(f).lookup).perc > 5 => reserve(f(g), cpu);",
     EplValidationError,
     "'f' is a variable; it cannot bind another variable 'g'", 1),
    # -- validation: features -----------------------------------------
    ("client.call(any(a).lookup).perc > 5 => pin(a);",
     EplValidationError,
     "call features require a concrete callee type", 1),
    ("client.call(Folder(f).destroy_all).perc > 5 => reserve(f, cpu);",
     EplValidationError, "type 'Folder' has no function 'destroy_all'", 1),
    ("server.cpu.size > 10 => pin(Folder(f));",
     EplValidationError,
     "statistic 'size' does not apply to resource 'cpu'", 1),
    # -- validation: ref joins ----------------------------------------
    ("File(x) in ref(Folder(y).subfolders) => colocate(x, y);",
     EplValidationError, "type 'Folder' has no property 'subfolders'", 1),
    # -- validation: behaviors ----------------------------------------
    ("server.cpu.perc > 80 => balance({Ghost}, cpu);",
     EplValidationError, "balance references unknown actor type 'Ghost'",
     1),
    # -- line attribution ---------------------------------------------
    ("server.cpu.perc > 80 => balance({Folder}, cpu);\n"
     "\n"
     "true => pin(Ghost(g));",
     EplValidationError, "unknown actor type 'Ghost'", 3),
]


@pytest.mark.parametrize(
    "source, exc_type, fragment, line", CASES,
    ids=[f"{case[1].__name__}-{index}"
         for index, case in enumerate(CASES)])
def test_diagnostic(source, exc_type, fragment, line):
    with pytest.raises(exc_type) as info:
        compile_source(source, CLASSES)
    error = info.value
    assert fragment in str(error), (
        f"expected {fragment!r} in {error}")
    assert error.line == line


def test_diagnostics_are_epl_errors():
    """Every negative case surfaces as EplError (CLI catches that)."""
    for source, exc_type, _fragment, _line in CASES:
        assert issubclass(exc_type, EplError)
        with pytest.raises(EplError):
            compile_source(source, CLASSES)


def test_error_location_formatting():
    with pytest.raises(EplSyntaxError) as info:
        compile_source("true => pin(Folder(f))", CLASSES)
    assert "line 1" in str(info.value)
