"""Unit tests for EPL compilation: validation, classification, conflicts."""

import json

import pytest

from repro.actors import Actor
from repro.core.epl import (BEHAVIOR_PRIORITIES, EplValidationError,
                            behavior_priority, compile_source, parse_policy,
                            compile_policy, schema_from_classes, Balance,
                            Colocate, Pin, Reserve)


class Folder(Actor):
    files: list

    def __init__(self):
        self.files = []

    def open(self):
        return 1


class File(Actor):
    def read(self):
        return 2


class Worker(Actor):
    def run(self):
        return 3


ALL = [Folder, File, Worker]


def test_mixed_rule_lands_on_both_sides():
    compiled = compile_source("""
        server.cpu.perc > 80 and
        client.call(Folder(fo).open).perc > 40 and
        File(fi) in ref(fo.files) =>
            reserve(fo, cpu); colocate(fo, fi);
    """, ALL)
    assert len(compiled.actor_rules) == 1
    assert len(compiled.resource_rules) == 1
    assert isinstance(compiled.actor_rules[0].behaviors[0], Colocate)
    assert isinstance(compiled.resource_rules[0].behaviors[0], Reserve)
    # Both sides keep the full condition and the variable bindings.
    assert compiled.actor_rules[0].variables == {"fo": "Folder",
                                                 "fi": "File"}


def test_pure_interaction_rule_is_actor_only():
    compiled = compile_source(
        "File(fi) in ref(Folder(fo).files) => colocate(fo, fi);", ALL)
    assert len(compiled.actor_rules) == 1
    assert not compiled.resource_rules


def test_pure_resource_rule_is_gem_only():
    compiled = compile_source(
        "server.cpu.perc > 80 => balance({Worker}, cpu);", ALL)
    assert not compiled.actor_rules
    assert len(compiled.resource_rules) == 1


def test_variable_reuse_resolves_to_binding():
    compiled = compile_source("""
        client.call(Folder(fo).open).count > 5 => pin(fo);
    """, ALL)
    pin = compiled.actor_rules[0].behaviors[0]
    assert isinstance(pin, Pin)
    assert pin.target.is_bare_var()
    assert pin.target.var == "fo"


def test_unknown_type_rejected():
    with pytest.raises(EplValidationError) as excinfo:
        compile_source("true => pin(Ghost(g));", ALL)
    assert "Ghost" in str(excinfo.value)


def test_unknown_function_rejected():
    with pytest.raises(EplValidationError) as excinfo:
        compile_source(
            "client.call(Folder(f).destroy).count > 1 => pin(f);", ALL)
    assert "destroy" in str(excinfo.value)


def test_unknown_property_rejected():
    with pytest.raises(EplValidationError) as excinfo:
        compile_source(
            "File(fi) in ref(Folder(fo).subdirs) => colocate(fo, fi);", ALL)
    assert "subdirs" in str(excinfo.value)


def test_double_binding_rejected():
    with pytest.raises(EplValidationError):
        compile_source(
            "client.call(Folder(x).open).count > 1 and "
            "client.call(File(x).read).count > 1 => pin(x);", ALL)


def test_variable_shadowing_type_rejected():
    with pytest.raises(EplValidationError):
        compile_source("true => pin(Folder(File));", ALL)


def test_count_stat_on_resource_rejected():
    with pytest.raises(EplValidationError):
        compile_source("server.cpu.count > 5 => balance({Worker}, cpu);",
                       ALL)


def test_mem_size_stat_allowed():
    compiled = compile_source(
        "server.mem.size > 1024 => balance({Worker}, mem);", ALL)
    assert len(compiled.resource_rules) == 1


def test_balance_unknown_type_rejected():
    with pytest.raises(EplValidationError):
        compile_source("true => balance({Ghost}, cpu);", ALL)


def test_any_type_allowed():
    compiled = compile_source(
        "server.cpu.perc > 90 => balance({Worker}, cpu); pin(any(a));",
        ALL)
    assert compiled.rule_count() == 1


def test_call_on_any_rejected():
    with pytest.raises(EplValidationError):
        compile_source("client.call(any(a).run).count > 1 => pin(a);", ALL)


def test_out_of_range_percentage_warns():
    compiled = compile_source(
        "server.cpu.perc > 140 => balance({Worker}, cpu);", ALL)
    assert any("140" in str(w) for w in compiled.warnings)


def test_conflict_pin_vs_balance_warns():
    compiled = compile_source("""
        true => pin(Worker(w));
        server.cpu.perc > 80 => balance({Worker}, cpu);
    """, ALL)
    assert any("pinned" in str(w) and "balance" in str(w)
               for w in compiled.warnings)


def test_conflict_colocate_vs_separate_warns():
    compiled = compile_source("""
        File(fi) in ref(Folder(fo).files) => colocate(fo, fi);
        true => separate(Folder(a), File(b));
    """, ALL)
    assert any("colocate and separate" in str(w)
               for w in compiled.warnings)


def test_conflict_balance_vs_colocate_warns():
    compiled = compile_source("""
        File(fi) in ref(Folder(fo).files) => colocate(fo, fi);
        server.cpu.perc > 80 => balance({Folder}, cpu);
    """, ALL)
    assert any("balance takes priority" in str(w)
               for w in compiled.warnings)


def test_priorities_order_balance_over_colocate():
    assert BEHAVIOR_PRIORITIES["balance"] > BEHAVIOR_PRIORITIES["reserve"]
    assert BEHAVIOR_PRIORITIES["reserve"] > BEHAVIOR_PRIORITIES["separate"]
    assert BEHAVIOR_PRIORITIES["separate"] > BEHAVIOR_PRIORITIES["colocate"]
    assert behavior_priority(Balance(("Worker",), "cpu")) == \
        BEHAVIOR_PRIORITIES["balance"]


def test_dnf_distributes_or_over_and():
    compiled = compile_source(
        "(server.cpu.perc > 80 or server.cpu.perc < 60) and true "
        "=> balance({Worker}, cpu);", ALL)
    rule = compiled.resource_rules[0]
    assert len(rule.dnf) == 2


def test_config_serialization_roundtrips_to_json():
    compiled = compile_source("""
        server.cpu.perc > 80 and
        client.call(Folder(fo).open).perc > 40 and
        File(fi) in ref(fo.files) =>
            reserve(fo, cpu); colocate(fo, fi);
        server.cpu.perc < 50 => balance({Worker}, cpu);
    """, ALL)
    config = json.loads(compiled.to_json())
    assert len(config["rules"]) == 2
    assert config["rules"][0]["behaviors"][0]["kind"] == "reserve"
    assert config["rules"][1]["behaviors"][0]["types"] == ["Worker"]
    assert "Folder" in config["types"]


def test_schema_from_classes():
    schema = schema_from_classes(ALL)
    assert set(schema) == {"Folder", "File", "Worker"}
    assert schema["Folder"].has_property("files")
    assert schema["File"].has_function("read")


def test_compile_policy_accepts_prebuilt_schema():
    policy = parse_policy("true => pin(Worker(w));")
    compiled = compile_policy(policy, schema_from_classes(ALL))
    assert compiled.rule_count() == 1
