"""Unit tests for the graph container and generators."""

import random

import pytest

from repro.graphs import (Graph, powerlaw_graph, ring_graph, social_graph,
                          uniform_graph)


def test_graph_basics():
    graph = Graph(3, edges=[(0, 1), (1, 2), (0, 2)])
    assert graph.num_nodes == 3
    assert graph.num_edges == 3
    assert list(graph.out_edges(0)) == [1, 2]
    assert graph.out_degree(0) == 2
    assert graph.in_degree(2) == 2
    assert sorted(graph.edges()) == [(0, 1), (0, 2), (1, 2)]


def test_graph_rejects_out_of_range_edges():
    graph = Graph(2)
    with pytest.raises(IndexError):
        graph.add_edge(0, 5)
    with pytest.raises(ValueError):
        Graph(-1)


def test_undirected_neighbors_symmetrized():
    graph = Graph(3, edges=[(0, 1), (0, 1), (1, 2)])
    adj = graph.undirected_neighbors()
    assert adj[0][1] == 2           # multiplicity preserved
    assert adj[1][0] == 2
    assert adj[2][1] == 1
    assert 2 not in adj[0]


def test_self_loops_excluded_from_undirected():
    graph = Graph(2, edges=[(0, 0), (0, 1)])
    adj = graph.undirected_neighbors()
    assert 0 not in adj[0]


def test_ring_graph_structure():
    graph = ring_graph(5, hops=2)
    assert graph.num_edges == 10
    assert sorted(graph.out_edges(4)) == [0, 1]


def test_powerlaw_graph_has_degree_skew():
    graph = powerlaw_graph(500, 3, random.Random(1))
    degrees = sorted((graph.out_degree(n) for n in graph.nodes()),
                     reverse=True)
    assert degrees[0] > 5 * degrees[len(degrees) // 2]


def test_powerlaw_graph_deterministic_per_seed():
    a = powerlaw_graph(100, 2, random.Random(5))
    b = powerlaw_graph(100, 2, random.Random(5))
    assert list(a.edges()) == list(b.edges())


def test_powerlaw_minimum_size():
    with pytest.raises(ValueError):
        powerlaw_graph(1, 2)


def test_social_graph_superhubs_dominate():
    graph = social_graph(1000, 3, superhubs=3, hub_fraction=0.1,
                         rng=random.Random(2))
    hub_degree = min(graph.out_degree(h) for h in range(3))
    tail_degree = graph.out_degree(900)
    assert hub_degree > 5 * max(1, tail_degree)


def test_uniform_graph_edge_count():
    graph = uniform_graph(50, 200, random.Random(3))
    assert graph.num_edges <= 200
    assert graph.num_edges > 150  # only self-loop draws are dropped
