"""Unit tests for the reference PageRank implementation."""

import random

import pytest

from repro.graphs import (Graph, pagerank, pagerank_delta, powerlaw_graph,
                          ring_graph)


def test_ranks_sum_to_one():
    graph = powerlaw_graph(200, 3, random.Random(1))
    ranks = pagerank(graph)
    assert sum(ranks) == pytest.approx(1.0, abs=1e-9)


def test_ring_graph_is_uniform():
    ranks = pagerank(ring_graph(10))
    assert all(r == pytest.approx(0.1, abs=1e-9) for r in ranks)


def test_dangling_mass_redistributed():
    # 0 -> 1, 1 dangles: total mass must stay 1.
    graph = Graph(2, edges=[(0, 1)])
    ranks = pagerank(graph)
    assert sum(ranks) == pytest.approx(1.0, abs=1e-9)
    assert ranks[1] > ranks[0]


def test_hub_ranks_higher_than_leaf():
    # Star: everyone points at node 0.
    graph = Graph(5, edges=[(i, 0) for i in range(1, 5)])
    ranks = pagerank(graph)
    assert ranks[0] > max(ranks[1:]) * 3


def test_known_two_node_cycle():
    graph = Graph(2, edges=[(0, 1), (1, 0)])
    ranks = pagerank(graph)
    assert ranks[0] == pytest.approx(0.5, abs=1e-9)
    assert ranks[1] == pytest.approx(0.5, abs=1e-9)


def test_delta_decreases_monotonically_late():
    graph = powerlaw_graph(100, 3, random.Random(2))
    rank = [1.0 / 100] * 100
    deltas = []
    for _ in range(10):
        rank, delta = pagerank_delta(graph, rank)
        deltas.append(delta)
    assert deltas[-1] < deltas[0]


def test_convergence_tolerance_stops_early():
    graph = ring_graph(10)
    # Uniform start on a ring is the fixed point: one iteration suffices.
    ranks = pagerank(graph, iterations=50, tolerance=1e-6)
    assert all(r == pytest.approx(0.1, abs=1e-9) for r in ranks)


def test_empty_graph():
    assert pagerank(Graph(0)) == []


def test_damping_extremes():
    graph = Graph(3, edges=[(0, 1), (1, 2), (2, 0)])
    no_damping = pagerank(graph, damping=0.0)
    assert all(r == pytest.approx(1 / 3, abs=1e-9) for r in no_damping)
