"""Unit tests for the multilevel partitioner."""

import random

import pytest

from repro.graphs import (edge_cut, partition_graph, partition_sizes,
                          powerlaw_graph, ring_graph, uniform_graph)


def test_every_node_assigned_within_k():
    graph = powerlaw_graph(400, 3, random.Random(1))
    result = partition_graph(graph, 8, random.Random(2))
    assert len(result.assignment) == graph.num_nodes
    assert all(0 <= part < 8 for part in result.assignment)


def test_partitions_node_balanced():
    graph = powerlaw_graph(960, 4, random.Random(1))
    result = partition_graph(graph, 16, random.Random(2))
    sizes = result.sizes()
    assert min(sizes) >= 0.85 * (graph.num_nodes / 16)
    assert max(sizes) <= 1.15 * (graph.num_nodes / 16)


def test_cut_beats_random_assignment():
    graph = uniform_graph(600, 2400, random.Random(4))
    result = partition_graph(graph, 8, random.Random(2))
    rng = random.Random(9)
    random_assignment = [rng.randrange(8) for _ in graph.nodes()]
    assert edge_cut(graph, result.assignment) < \
        edge_cut(graph, random_assignment)


def test_ring_graph_cut_is_small():
    graph = ring_graph(256)
    result = partition_graph(graph, 4, random.Random(2))
    # A ring cut into 4 contiguous arcs has cut 4; allow some slack.
    assert edge_cut(graph, result.assignment) <= 24


def test_k_equals_one():
    graph = powerlaw_graph(50, 2, random.Random(1))
    result = partition_graph(graph, 1)
    assert set(result.assignment) == {0}


def test_k_at_least_num_nodes():
    graph = powerlaw_graph(8, 2, random.Random(1))
    result = partition_graph(graph, 16)
    assert len(result.assignment) == 8


def test_invalid_k_rejected():
    graph = powerlaw_graph(10, 2, random.Random(1))
    with pytest.raises(ValueError):
        partition_graph(graph, 0)


def test_part_nodes_consistent_with_assignment():
    graph = powerlaw_graph(120, 3, random.Random(1))
    result = partition_graph(graph, 4, random.Random(2))
    total = 0
    for part in range(4):
        nodes = result.part_nodes(part)
        total += len(nodes)
        assert all(result.assignment[n] == part for n in nodes)
    assert total == graph.num_nodes


def test_partition_sizes_helper():
    assert partition_sizes([0, 1, 1, 2], 3) == [1, 2, 1]


def test_deterministic_given_seed():
    graph = powerlaw_graph(300, 3, random.Random(1))
    a = partition_graph(graph, 8, random.Random(7)).assignment
    b = partition_graph(graph, 8, random.Random(7)).assignment
    assert a == b
