"""FaultPlan construction and validation."""

import pytest

from repro.chaos import (CrashServer, DegradeNetwork, FaultPlan, KillGem,
                         SlowServer)


def test_plan_orders_faults_by_time():
    plan = FaultPlan(faults=(
        SlowServer(at_ms=9_000.0, duration_ms=1_000.0),
        CrashServer(at_ms=3_000.0),
        KillGem(at_ms=3_000.0, gem_id=1),
    ))
    ordered = plan.ordered()
    assert [type(f) for f in ordered] == [CrashServer, KillGem, SlowServer]
    assert len(plan) == 3
    assert list(plan)  # iterable


def test_plan_is_immutable_and_typed():
    plan = FaultPlan(faults=[CrashServer(at_ms=0.0)])  # list is coerced
    assert isinstance(plan.faults, tuple)
    with pytest.raises(TypeError):
        FaultPlan(faults=("crash at noon",))


@pytest.mark.parametrize("build", [
    lambda: CrashServer(at_ms=-1.0),
    lambda: CrashServer(at_ms=0.0, server_index=-1),
    lambda: CrashServer(at_ms=0.0, replace_after_ms=-5.0),
    lambda: KillGem(at_ms=-1.0),
    lambda: KillGem(at_ms=0.0, gem_id=-1),
    lambda: KillGem(at_ms=0.0, recover_after_ms=0.0),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=0.0,
                           latency_multiplier=2.0),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=100.0,
                           latency_multiplier=0.5),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=100.0,
                           drop_probability=1.5),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=100.0),  # degrades nothing
    lambda: SlowServer(at_ms=0.0, duration_ms=0.0),
    lambda: SlowServer(at_ms=0.0, duration_ms=100.0, speed_factor=0.0),
    lambda: SlowServer(at_ms=0.0, duration_ms=100.0, server_index=-2),
])
def test_invalid_faults_rejected(build):
    with pytest.raises(ValueError):
        build()
