"""FaultPlan construction, validation, and serialization round-trips."""

import pytest

from repro.chaos import (CrashServer, DegradeNetwork, EventStorm, FaultPlan,
                         HotKeyFlood, KillGem, KillRoot, PartitionNetwork,
                         SlowServer, fault_from_dict, fault_to_dict)


def test_plan_orders_faults_by_time():
    plan = FaultPlan(faults=(
        SlowServer(at_ms=9_000.0, duration_ms=1_000.0),
        CrashServer(at_ms=3_000.0),
        KillGem(at_ms=3_000.0, gem_id=1),
    ))
    ordered = plan.ordered()
    assert [type(f) for f in ordered] == [CrashServer, KillGem, SlowServer]
    assert len(plan) == 3
    assert list(plan)  # iterable


def test_plan_is_immutable_and_typed():
    plan = FaultPlan(faults=[CrashServer(at_ms=0.0)])  # list is coerced
    assert isinstance(plan.faults, tuple)
    with pytest.raises(TypeError):
        FaultPlan(faults=("crash at noon",))


# One representative of every fault type, exercising the non-default
# fields; a new fault type without a row here fails the coverage check.
_ROUND_TRIP_FAULTS = [
    CrashServer(at_ms=1_000.0, server_index=2, replace_after_ms=500.0),
    KillGem(at_ms=2_000.0, gem_id=1, recover_after_ms=3_000.0),
    KillRoot(at_ms=2_500.0, recover_after_ms=4_000.0),
    DegradeNetwork(at_ms=3_000.0, duration_ms=4_000.0,
                   latency_multiplier=2.5, drop_probability=0.1),
    SlowServer(at_ms=4_000.0, duration_ms=5_000.0, server_index=1,
               speed_factor=0.25),
    PartitionNetwork(at_ms=5_000.0, duration_ms=6_000.0, group=(0, 2),
                     symmetric=False, gems=(1,), loss=0.75),
    EventStorm(at_ms=6_000.0, duration_ms=2_000.0, rate_per_ms=1.5,
               cpu_ms=2.0, size_bytes=256.0, server_index=1),
    HotKeyFlood(at_ms=7_000.0, duration_ms=2_000.0, rate_per_ms=2.0,
                cpu_ms=0.5, size_bytes=128.0, actor_rank=3),
]


def test_round_trip_table_covers_every_fault_type():
    from repro.chaos.plan import _FAULT_TYPES
    assert {type(f) for f in _ROUND_TRIP_FAULTS} == set(_FAULT_TYPES)


@pytest.mark.parametrize("fault", _ROUND_TRIP_FAULTS,
                         ids=lambda f: type(f).__name__)
def test_fault_dict_round_trip(fault):
    data = fault_to_dict(fault)
    assert data["fault"] in {"crash-server", "kill-gem", "kill-root",
                             "degrade-network", "slow-server",
                             "partition-network", "event-storm",
                             "hot-key-flood"}
    assert fault_from_dict(data) == fault


@pytest.mark.parametrize("fault", _ROUND_TRIP_FAULTS,
                         ids=lambda f: type(f).__name__)
def test_fault_json_round_trip(fault):
    """Through actual JSON: tuples become lists on the way back in and
    must be re-normalized by the constructors."""
    import json
    data = json.loads(json.dumps(fault_to_dict(fault)))
    assert fault_from_dict(data) == fault


def test_fault_plan_round_trip():
    plan = FaultPlan(faults=tuple(_ROUND_TRIP_FAULTS))
    rebuilt = FaultPlan.from_jsonable(plan.to_jsonable())
    assert rebuilt == plan


def test_fault_from_dict_rejects_unknown_kind_and_fields():
    with pytest.raises(ValueError, match="unknown fault kind"):
        fault_from_dict({"fault": "meteor-strike", "at_ms": 0.0})
    with pytest.raises(ValueError, match="unknown fields"):
        fault_from_dict({"fault": "partition-network", "at_ms": 0.0,
                         "duration_ms": 1.0, "group": [0], "blast": 9})


@pytest.mark.parametrize("build", [
    lambda: CrashServer(at_ms=-1.0),
    lambda: CrashServer(at_ms=0.0, server_index=-1),
    lambda: CrashServer(at_ms=0.0, replace_after_ms=-5.0),
    lambda: KillGem(at_ms=-1.0),
    lambda: KillGem(at_ms=0.0, gem_id=-1),
    lambda: KillGem(at_ms=0.0, recover_after_ms=0.0),
    lambda: KillRoot(at_ms=-1.0),
    lambda: KillRoot(at_ms=0.0, recover_after_ms=0.0),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=0.0,
                           latency_multiplier=2.0),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=100.0,
                           latency_multiplier=0.5),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=100.0,
                           drop_probability=1.5),
    lambda: DegradeNetwork(at_ms=0.0, duration_ms=100.0),  # degrades nothing
    lambda: SlowServer(at_ms=0.0, duration_ms=0.0),
    lambda: SlowServer(at_ms=0.0, duration_ms=100.0, speed_factor=0.0),
    lambda: SlowServer(at_ms=0.0, duration_ms=100.0, server_index=-2),
    lambda: PartitionNetwork(at_ms=0.0, duration_ms=100.0, group=()),
    lambda: PartitionNetwork(at_ms=0.0, duration_ms=100.0, group=(0, 0)),
    lambda: PartitionNetwork(at_ms=0.0, duration_ms=100.0, group=(-1,)),
    lambda: PartitionNetwork(at_ms=0.0, duration_ms=100.0, group=(0,),
                             loss=0.0),
    lambda: PartitionNetwork(at_ms=0.0, duration_ms=100.0, group=(0,),
                             loss=1.5),
    lambda: PartitionNetwork(at_ms=0.0, duration_ms=0.0, group=(0,)),
    lambda: PartitionNetwork(at_ms=0.0, duration_ms=100.0, group=(0,),
                             gems=(1, 1)),
])
def test_invalid_faults_rejected(build):
    with pytest.raises(ValueError):
        build()
