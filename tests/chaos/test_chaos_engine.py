"""Chaos engine: fault injection through the public runtime surfaces."""

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.chaos import (ChaosEngine, CrashServer, DegradeNetwork,
                         FaultPlan, KillGem, KillRoot, PartitionNetwork,
                         SlowServer)
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def kinds(engine):
    return [kind for _t, kind, _d in engine.log]


def test_crash_server_fault_kills_actors():
    bed = build_cluster(2)
    victim = bed.system.create_actor(Spinner, server=bed.servers[0])
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=1_000.0, server_index=0),)))
    engine.start()
    bed.run(until_ms=2_000.0)
    assert engine.faults_injected == 1
    assert bed.system.directory.try_lookup(victim.actor_id) is None
    assert not bed.servers[0].running
    assert kinds(engine) == ["fault-injected"]


def test_crash_server_with_replacement_restores_fleet_size():
    bed = build_cluster(2)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=1_000.0, server_index=1,
                    replace_after_ms=3_000.0),)))
    engine.start()
    bed.run(until_ms=2_000.0)
    assert bed.provisioner.fleet_size() == 1
    bed.run(until_ms=6_000.0)
    assert bed.provisioner.fleet_size() == 2
    assert kinds(engine) == ["fault-injected", "fault-healed"]


def test_degrade_network_slows_and_drops_then_heals():
    bed = build_cluster(2)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        DegradeNetwork(at_ms=500.0, duration_ms=1_000.0,
                       latency_multiplier=4.0, drop_probability=1.0),)))
    engine.start()
    bed.run(until_ms=600.0)
    assert bed.system.fabric.degraded
    assert bed.system.fabric.latency_multiplier == 4.0
    # With drop probability 1.0 every remote call is lost: no reply.
    target = bed.system.create_actor(Spinner, server=bed.servers[1])
    client = Client(bed.system)
    replies = []

    def body():
        value = yield from client.reliable_call(
            target, "spin", 1.0, timeout_ms=200.0, max_retries=0)
        replies.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=1_000.0)
    assert replies == [None]
    assert bed.system.fabric.messages_dropped >= 1
    bed.run(until_ms=2_000.0)
    assert not bed.system.fabric.degraded
    assert kinds(engine) == ["fault-injected", "fault-healed"]


def test_slow_server_limps_and_recovers():
    bed = build_cluster(1)
    server = bed.servers[0]
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        SlowServer(at_ms=100.0, duration_ms=1_000.0, speed_factor=0.25),)))
    engine.start()
    bed.run(until_ms=200.0)
    assert server.speed_factor == 0.25
    bed.run(until_ms=2_000.0)
    assert server.speed_factor == 1.0
    assert kinds(engine) == ["fault-injected", "fault-healed"]


def test_kill_gem_and_recover_via_manager():
    bed = build_cluster(2)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, gem_count=2))
    manager.start()
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        KillGem(at_ms=1_000.0, gem_id=0, recover_after_ms=2_000.0),)),
        manager=manager)
    engine.start()
    bed.run(until_ms=1_500.0)
    assert manager.gems[0].failed
    bed.run(until_ms=4_000.0)
    assert not manager.gems[0].failed
    assert [kind for kind, _ in events] == ["fault-injected", "fault-healed"]


def test_kill_gem_addresses_stable_id_not_list_position():
    """A respawn (or any list churn) must not shift KillGem targets: the
    fault names the GEM's stable id, not an index into manager.gems."""
    bed = build_cluster(2)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, gem_count=2))
    manager.start()
    # Simulate list churn: the gem with id 1 now sits at index 0.
    removed = manager.gems.pop(0)
    assert removed.gem_id == 0 and manager.gems[0].gem_id == 1
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        KillGem(at_ms=500.0, gem_id=1),
        KillGem(at_ms=600.0, gem_id=0),   # no longer exists -> skip
    )), manager=manager)
    engine.start()
    bed.run(until_ms=1_000.0)
    assert manager.gems[0].failed and manager.gems[0].gem_id == 1
    assert engine.faults_injected == 1
    assert engine.faults_skipped == 1
    assert engine.log[-1][2]["reason"] == "no-such-gem"


def _hierarchical_manager(bed, **config):
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0,
        control_plane="hierarchical", server_group_size=2, **config))
    manager.start()
    return manager


def test_kill_root_injects_and_recovers_in_place():
    """Recovery before any promotion restores the same incarnation:
    generation unchanged, views wiped (fresh fold from full publishes)."""
    bed = build_cluster(4)
    manager = _hierarchical_manager(bed)
    root = manager.hierarchy.root
    root.views[0] = {"cpu_sum": 1.0}
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        KillRoot(at_ms=1_000.0, recover_after_ms=500.0),)),
        manager=manager)
    engine.start()
    bed.run(until_ms=1_200.0)
    assert root.failed
    bed.run(until_ms=2_000.0)
    assert not root.failed
    assert root.generation == 0
    assert root.views == {}          # recovery discards stale views
    injected, healed = engine.log
    assert injected[1] == "fault-injected" and healed[1] == "fault-healed"
    assert healed[2]["superseded"] is False


def test_kill_root_recovery_superseded_by_promotion():
    """If a leaf is promoted while the old root is down, the scheduled
    recovery must not restore authority to the dead incarnation."""
    bed = build_cluster(4)
    manager = _hierarchical_manager(bed)
    root = manager.hierarchy.root
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        KillRoot(at_ms=1_000.0, recover_after_ms=9_000.0),)),
        manager=manager)
    engine.start()
    # The first leaf publish after the kill (next period) promotes.
    bed.run(until_ms=8_000.0)
    assert not root.failed
    assert root.generation == 1
    assert root.host_gem_id == 0     # lowest-id alive leaf
    bed.run(until_ms=11_000.0)       # the heal fires, finds itself stale
    assert root.generation == 1      # unchanged: promotion stands
    healed = [entry for entry in engine.log if entry[1] == "fault-healed"]
    assert healed and healed[-1][2]["superseded"] is True


def test_kill_root_skipped_without_hierarchy_or_when_already_failed():
    bed = build_cluster(4)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    flat = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0))
    flat.start()
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        KillRoot(at_ms=100.0),)), manager=flat)
    engine.start()
    bed.run(until_ms=500.0)
    assert engine.faults_skipped == 1
    assert engine.log[-1][2]["reason"] == "no-hierarchy"

    bed = build_cluster(4)
    manager = _hierarchical_manager(bed)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        KillRoot(at_ms=100.0),
        KillRoot(at_ms=200.0),       # still down: nothing to kill
    )), manager=manager)
    engine.start()
    bed.run(until_ms=500.0)
    assert engine.faults_injected == 1
    assert engine.faults_skipped == 1
    assert engine.log[-1][2]["reason"] == "root-already-failed"


def test_unappliable_faults_are_skipped_not_fatal():
    bed = build_cluster(1)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=100.0, server_index=0),
        CrashServer(at_ms=200.0, server_index=0),   # already down
        CrashServer(at_ms=300.0, server_index=7),   # never existed
        SlowServer(at_ms=400.0, duration_ms=50.0, server_index=0),
        KillGem(at_ms=500.0, gem_id=0),             # no manager attached
    )))
    engine.start()
    bed.run(until_ms=1_000.0)
    assert engine.faults_injected == 1
    assert engine.faults_skipped == 4
    assert kinds(engine) == ["fault-injected"] + ["fault-skipped"] * 4


def test_partition_network_severs_and_heals():
    bed = build_cluster(3)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        PartitionNetwork(at_ms=500.0, duration_ms=1_000.0, group=(0,)),)))
    engine.start()
    bed.run(until_ms=600.0)
    fabric = bed.system.fabric
    assert fabric.partitioned
    assert fabric.link_blocked(bed.servers[0], bed.servers[1])
    assert fabric.link_blocked(bed.servers[1], bed.servers[0])
    assert not fabric.link_blocked(bed.servers[1], bed.servers[2])
    bed.run(until_ms=2_000.0)
    assert not fabric.partitioned
    assert not fabric.link_blocked(bed.servers[0], bed.servers[1])
    assert kinds(engine) == ["fault-injected", "fault-healed"]
    injected = engine.log[0][2]
    assert injected["fault"] == "partition-network"
    assert injected["group"] == (bed.servers[0].name,)
    assert injected["symmetric"] is True
    healed = engine.log[1][2]
    assert "partition_drops" in healed


def test_asymmetric_partition_blocks_one_direction_only():
    bed = build_cluster(3)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        PartitionNetwork(at_ms=100.0, duration_ms=1_000.0, group=(0,),
                         symmetric=False),)))
    engine.start()
    bed.run(until_ms=200.0)
    fabric = bed.system.fabric
    assert fabric.link_blocked(bed.servers[0], bed.servers[1])
    assert not fabric.link_blocked(bed.servers[1], bed.servers[0])


def test_partition_group_filtered_to_live_servers():
    bed = build_cluster(3)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=100.0, server_index=0),
        # Group {0, 1}: server 0 is dead, so only server 1 is cut off.
        PartitionNetwork(at_ms=500.0, duration_ms=1_000.0, group=(0, 1)),)))
    engine.start()
    bed.run(until_ms=600.0)
    injected = engine.log[-1][2]
    assert injected["group"] == (bed.servers[1].name,)
    assert bed.system.fabric.link_blocked(bed.servers[1], bed.servers[2])


def test_partition_skipped_when_group_all_crashed():
    bed = build_cluster(2)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=100.0, server_index=0),
        PartitionNetwork(at_ms=500.0, duration_ms=1_000.0, group=(0,)),)))
    engine.start()
    bed.run(until_ms=1_000.0)
    assert engine.faults_injected == 1
    assert engine.faults_skipped == 1
    assert not bed.system.fabric.partitioned


def test_partition_with_manager_advances_epoch_and_recovers():
    bed = build_cluster(3)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0))
    manager.start()
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        PartitionNetwork(at_ms=1_000.0, duration_ms=4_000.0,
                         group=(0,)),)), manager=manager)
    engine.start()
    bed.run(until_ms=2_000.0)
    assert manager.epoch == 1
    bed.run(until_ms=30_000.0)
    assert manager.epoch == 2  # inject + heal
    names = [kind for kind, _ in events]
    assert names.count("epoch-advanced") == 2
    assert "partition-healed" in names
    # Everyone ends on the healed epoch; no LEM stays fenced out.
    for lem in manager.lems.values():
        assert lem.epoch == manager.epoch
    # A replacement server must not shift the meaning of later indices.
    bed = build_cluster(3)
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        CrashServer(at_ms=100.0, server_index=0, replace_after_ms=100.0),
        CrashServer(at_ms=1_000.0, server_index=2),)))
    engine.start()
    original_third = bed.servers[2]
    bed.run(until_ms=2_000.0)
    assert not original_third.running
    assert engine.faults_injected == 2
