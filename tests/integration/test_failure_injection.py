"""Failure injection: server crashes and runtime resilience."""

import pytest

from repro.actors import Actor, Client, RuntimeHooks
from repro.bench import build_cluster
from repro.check import InvariantChecker
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


class Heavy(Actor):
    # 64 MB over a 10 Gbps link: the state transfer takes ~55 ms, long
    # enough to crash a server mid-migration deterministically.
    state_size_mb = 64.0

    def noop(self):
        return True


class AbortWatch(RuntimeHooks):
    def __init__(self):
        self.aborted = []

    def on_migration_aborted(self, record, source, target, reason):
        self.aborted.append((record.ref, source.name, target.name, reason))


def test_crash_destroys_actors_and_returns_refs():
    bed = build_cluster(2)
    victims = [bed.system.create_actor(Spinner, server=bed.servers[0])
               for _ in range(3)]
    survivor = bed.system.create_actor(Spinner, server=bed.servers[1])
    lost = bed.system.crash_server(bed.servers[0])
    assert set(lost) == set(victims)
    assert bed.provisioner.fleet_size() == 1
    assert bed.system.directory.count() == 1
    assert bed.system.directory.try_lookup(survivor.actor_id) is not None


def test_calls_to_crashed_actors_return_none():
    bed = build_cluster(2)
    victim = bed.system.create_actor(Spinner, server=bed.servers[0])
    bed.system.crash_server(bed.servers[0])
    client = Client(bed.system)
    results = []

    def body():
        value = yield client.call(victim, "spin", 1.0)
        results.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=5_000.0)
    assert results == [None]


def test_inflight_callers_are_unblocked_on_crash():
    bed = build_cluster(2)
    victim = bed.system.create_actor(Spinner, server=bed.servers[0])
    client = Client(bed.system)
    results = []

    def body():
        value = yield client.call(victim, "spin", 10_000.0)
        results.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=100.0)           # handler is now mid-compute
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=30_000.0)
    assert results == [None]          # caller not stuck forever


def test_chunked_compute_handler_is_parked_on_crash():
    # A handler that computes in many chunks must not blow up when its
    # server dies between chunks: the caller gets None and the orphaned
    # handler simply never resumes.
    class Chunky(Actor):
        def grind(self):
            for _ in range(200):
                yield self.compute(50.0)
            return True

    bed = build_cluster(2)
    ref = bed.system.create_actor(Chunky, server=bed.servers[0])
    client = Client(bed.system)
    results = []

    def body():
        value = yield client.call(ref, "grind")
        results.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=120.0)           # a few chunks in
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=30_000.0)
    assert results == [None]


def test_emr_survives_server_crash_and_keeps_balancing():
    bed = build_cluster(3)
    refs = [bed.system.create_actor(Spinner, server=bed.servers[0])
            for _ in range(6)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0))
    checker = InvariantChecker(manager)
    checker.attach()
    manager.start()
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < 40_000.0:
            reply = yield client.call(ref, "spin", 40.0)
            if reply is None:
                return  # our actor died with its server

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=12_000.0)
    # Crash whichever server currently hosts the fewest of our actors.
    victim = min(bed.provisioner.servers,
                 key=lambda s: len(bed.system.actors_on(s)))
    bed.system.crash_server(victim)
    bed.run(until_ms=40_000.0)
    # The manager kept running rounds on the surviving servers.
    alive_lems = [lem for lem in manager.lems.values()
                  if lem.server.running]
    assert all(lem.rounds_run >= 2 for lem in alive_lems)
    # Surviving actors are spread over the two remaining servers.
    survivors = [ref for ref in refs
                 if bed.system.directory.try_lookup(ref.actor_id)]
    homes = {bed.system.server_of(ref).server_id for ref in survivors}
    assert homes <= {s.server_id for s in bed.provisioner.servers}
    checker.assert_clean()


def test_migration_toward_crashed_server_is_dropped():
    bed = build_cluster(2)
    ref = bed.system.create_actor(Spinner, server=bed.servers[0])
    target = bed.servers[1]
    bed.system.crash_server(target)
    done = bed.system.migrate_actor(ref, target)
    bed.run(until_ms=1_000.0)
    assert done.value is False
    assert bed.system.server_of(ref) is bed.servers[0]


def test_source_crash_mid_migration_aborts_cleanly():
    bed = build_cluster(2)
    watch = AbortWatch()
    bed.system.add_hooks(watch)
    source, target = bed.servers
    ref = bed.system.create_actor(Heavy, server=source)
    done = bed.system.migrate_actor(ref, target)
    bed.run(until_ms=20.0)            # transfer (~55 ms) is in flight
    bed.system.crash_server(source)
    bed.run(until_ms=1_000.0)
    assert done.value is False
    # No ghost registration anywhere: the actor died with its source.
    assert bed.system.directory.try_lookup(ref.actor_id) is None
    assert bed.system.actors_on(target) == []
    # Memory settled: nothing was ever allocated on the target, and the
    # crash freed the source's allocation.
    assert target.memory_used_mb == 0.0
    assert source.memory_used_mb == 0.0
    assert watch.aborted == [(ref, source.name, target.name, "actor-lost")]


def test_target_crash_mid_migration_keeps_actor_on_source():
    bed = build_cluster(2)
    watch = AbortWatch()
    bed.system.add_hooks(watch)
    source, target = bed.servers
    ref = bed.system.create_actor(Heavy, server=source)
    done = bed.system.migrate_actor(ref, target)
    bed.run(until_ms=20.0)
    bed.system.crash_server(target)
    bed.run(until_ms=1_000.0)
    assert done.value is False
    record = bed.system.directory.lookup(ref.actor_id)
    assert record.server is source
    assert record.migrating is False
    assert record.migrations == 0
    assert source.memory_used_mb == Heavy.state_size_mb
    assert watch.aborted == [(ref, source.name, target.name,
                              "target-crashed")]
    # The actor still processes messages on its source afterwards.
    client = Client(bed.system)
    out = []

    def body():
        out.append((yield client.call(ref, "noop")))

    spawn(bed.sim, body())
    bed.run(until_ms=2_000.0)
    assert out == [True]


def test_aborted_migration_appears_in_tracer():
    from repro.core.tracing import ElasticityTracer

    bed = build_cluster(2)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy,
                                EmrConfig(period_ms=5_000.0,
                                          gem_wait_ms=300.0))
    tracer = ElasticityTracer(manager)
    tracer.attach()
    checker = InvariantChecker(manager, tracer=tracer)
    checker.attach()
    source, target = bed.servers
    ref = bed.system.create_actor(Heavy, server=source)
    bed.system.migrate_actor(ref, target)
    bed.run(until_ms=20.0)
    bed.system.crash_server(target)
    bed.run(until_ms=1_000.0)
    aborted = tracer.of_kind("migration-aborted")
    assert len(aborted) == 1
    assert aborted[0].detail["reason"] == "target-crashed"
    crashed = tracer.of_kind("server-crashed")
    assert len(crashed) == 1
    assert crashed[0].detail["server"] == target.name
    checker.assert_clean()
