"""The shipped examples must run end to end (scaled where needed)."""

import runpy
import sys

import pytest


def run_example(path, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example("examples/quickstart.py", monkeypatch, capsys)
    assert "migrations performed:" in out
    assert "before:" in out and "after:" in out


def test_epl_tour(monkeypatch, capsys):
    out = run_example("examples/epl_tour.py", monkeypatch, capsys)
    assert "compiler warnings" in out
    assert "EplValidationError" in out


def test_policy_files_compile(monkeypatch, capsys):
    from repro.cli import main
    from repro.apps.halo import Player, Router, Session  # noqa: F401
    assert main(["compile", "examples/policies/halo.epl",
                 "--classes", "repro.apps.halo:Player,Session,Router"]) == 0
    assert main(["compile", "examples/policies/metadata.epl",
                 "--app", "metadata"]) == 0
    assert main(["compile", "examples/policies/pagerank.epl",
                 "--app", "pagerank"]) == 0
