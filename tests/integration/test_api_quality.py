"""Meta-tests on the public API surface: docstrings and exports."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.cluster",
    "repro.actors",
    "repro.core",
    "repro.core.epl",
    "repro.core.profiling",
    "repro.core.emr",
    "repro.core.tracing",
    "repro.graphs",
    "repro.workload",
    "repro.apps",
    "repro.baselines",
    "repro.serverless",
    "repro.bench",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring_and_all(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_exist_and_are_documented(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), \
            f"{module_name}.__all__ lists missing {name}"
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_public_classes_have_documented_public_methods():
    from repro.actors import ActorSystem
    from repro.core import ElasticityManager
    from repro.core.epl import CompiledPolicy
    from repro.serverless import FunctionPlatform, StorageTier

    for cls in (ActorSystem, ElasticityManager, CompiledPolicy,
                StorageTier, FunctionPlatform):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__, \
                f"{cls.__name__}.{name} lacks a docstring"


def test_top_level_reexports_cover_the_workflow():
    import repro
    # The names a user needs for the quickstart must be one import away.
    for name in ("Actor", "ActorSystem", "Client", "ElasticityManager",
                 "EmrConfig", "compile_source", "Simulator"):
        assert name in repro.__all__
