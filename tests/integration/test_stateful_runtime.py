"""Hypothesis state machine over the actor runtime.

Random sequences of create / migrate / pin / destroy / call operations,
checking the runtime's structural invariants after every step:

- the directory and the per-server views agree;
- server memory accounting equals the sum of resident actor footprints;
- a completed call always reaches the actor wherever it currently lives.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.actors import Actor, ActorSystem, Client
from repro.cluster import Provisioner
from repro.sim import Simulator, spawn


class Cell(Actor):
    state_size_mb = 2.0

    def __init__(self):
        self.hits = 0

    def poke(self):
        yield self.compute(0.5)
        self.hits += 1
        return self.hits


class ActorRuntimeMachine(RuleBasedStateMachine):
    actors = Bundle("actors")

    @initialize()
    def setup(self):
        self.sim = Simulator()
        self.provisioner = Provisioner(self.sim, default_type="m5.large")
        for _ in range(3):
            self.provisioner.boot_server(immediate=True)
        self.sim.run()
        self.system = ActorSystem(self.sim, self.provisioner)
        self.client = Client(self.system)
        self.alive = {}
        self.expected_hits = {}

    def _settle(self):
        self.sim.run(until=self.sim.now + 10_000.0)

    @rule(target=actors, server_index=st.integers(min_value=0, max_value=2))
    def create(self, server_index):
        ref = self.system.create_actor(
            Cell, server=self.provisioner.servers[server_index])
        self.alive[ref.actor_id] = ref
        self.expected_hits[ref.actor_id] = 0
        return ref

    @rule(ref=actors, server_index=st.integers(min_value=0, max_value=2))
    def migrate(self, ref, server_index):
        if ref.actor_id not in self.alive:
            return
        target = self.provisioner.servers[server_index]
        record = self.system.directory.lookup(ref.actor_id)
        was_pinned = record.pinned
        origin = record.server
        done = self.system.migrate_actor(ref, target)
        self._settle()
        if done.value:
            assert not was_pinned
            assert self.system.server_of(ref) is target
        else:
            assert was_pinned or origin is target

    @rule(ref=actors)
    def pin(self, ref):
        if ref.actor_id in self.alive:
            self.system.pin(ref, True)

    @rule(ref=actors)
    def unpin(self, ref):
        if ref.actor_id in self.alive:
            self.system.pin(ref, False)

    @rule(ref=actors)
    def call(self, ref):
        outcomes = []

        def body():
            value = yield self.client.call(ref, "poke")
            outcomes.append(value)

        spawn(self.sim, body())
        self._settle()
        assert len(outcomes) == 1
        if ref.actor_id in self.alive:
            self.expected_hits[ref.actor_id] += 1
            assert outcomes[0] == self.expected_hits[ref.actor_id]
        else:
            assert outcomes[0] is None

    @rule(ref=actors)
    def destroy(self, ref):
        self.system.destroy_actor(ref)
        self.alive.pop(ref.actor_id, None)

    @invariant()
    def directory_matches_server_views(self):
        if not hasattr(self, "system"):
            return
        listed = {record.ref.actor_id
                  for server in self.provisioner.servers
                  for record in self.system.actors_on(server)}
        assert listed == set(self.alive)
        assert self.system.directory.count() == len(self.alive)

    @invariant()
    def memory_accounting_is_exact(self):
        if not hasattr(self, "system"):
            return
        for server in self.provisioner.servers:
            expected = sum(record.instance.state_size_mb
                           for record in self.system.actors_on(server))
            assert server.memory_used_mb == pytest.approx(expected)


TestActorRuntimeMachine = ActorRuntimeMachine.TestCase
TestActorRuntimeMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None)
