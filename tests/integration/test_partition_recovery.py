"""End-to-end partition tolerance: a mid-run network cut isolates one
GEM with a minority of the fleet, and the stack must neither split-brain
nor lose or duplicate an actor.  Runs with the invariant checker
attached, so the no-split-brain / epoch-monotonicity /
no-duplicate-actor invariants are re-derived independently alongside the
explicit assertions below.
"""

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.chaos import ChaosEngine, FaultPlan, PartitionNetwork
from repro.check import InvariantChecker
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


class Heavy(Actor):
    # 64 MB over 10 Gbps: the state transfer takes ~55 ms, long enough
    # to land a partition mid-migration deterministically.
    state_size_mb = 64.0

    def noop(self):
        return True


PARTITION_AT = 11_000.0
PARTITION_MS = 14_000.0
END = 60_000.0


def build_stack():
    bed = build_cluster(5)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    # gem_reply_timeout below the suspicion timeout: a LEM blocked on a
    # reply the partition ate is silent for the whole wait, so the wait
    # must not outlast suspicion or live servers get suspected.
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0,
        suspicion_timeout_ms=6_000.0, gem_reply_timeout_ms=2_000.0,
        gem_count=2,
        allow_scale_out=True, allow_scale_in=True, min_servers=2))
    checker = InvariantChecker(manager)
    checker.attach()
    manager.start()
    # Servers 0-1 and GEM 0 fall behind the cut: 2 of 5 is a minority,
    # so that whole side must go quiescent until the heal.
    engine = ChaosEngine(bed.system, FaultPlan(faults=(
        PartitionNetwork(at_ms=PARTITION_AT, duration_ms=PARTITION_MS,
                         group=(0, 1), gems=(0,)),)), manager=manager)
    engine.start()
    return bed, manager, checker


def test_minority_side_goes_quiescent_and_recovers():
    bed, manager, checker = build_stack()
    events = []
    manager.add_listener(
        lambda kind, detail: events.append((bed.sim.now, kind, detail)))
    # Uneven load so the balance rule has real work on both sides.
    refs = [bed.system.create_actor(Spinner, server=bed.servers[i % 2])
            for i in range(10)]
    client = Client(bed.system)

    def loop(ref, cpu_ms):
        while bed.sim.now < END - 5_000.0:
            if (yield client.call(ref, "spin", cpu_ms)) is None:
                return

    for i, ref in enumerate(refs):
        spawn(bed.sim, loop(ref, 40.0 + 5.0 * i))
    bed.run(until_ms=PARTITION_AT + 1_000.0)
    assert manager.gems[0].degraded
    assert not manager.gems[1].degraded
    assert manager.epoch == 1
    bed.run(until_ms=END)
    assert manager.epoch == 2
    assert not manager.gems[0].degraded

    minority = {bed.servers[0].name, bed.servers[1].name}
    healed_at = [t for t, kind, _ in events if kind == "partition-healed"]
    assert len(healed_at) == 1
    for t, kind, detail in events:
        inside = PARTITION_AT <= t < healed_at[0]
        if kind in ("scale-out", "scale-in") and inside:
            # Fleet changes may only come from the majority-side GEM.
            assert detail["gem_id"] != 0
        if kind == "migration-started" and inside:
            # No migration starts from or onto the quorum-less side.
            assert detail["src"] not in minority
            assert detail["dst"] not in minority

    # The cut-off servers were declared unreachable, not dead: nothing
    # was resurrected, and after the heal they are re-admitted.
    kinds = [kind for _, kind, _ in events]
    assert "server-unreachable" in kinds
    assert "server-suspected" not in kinds
    readmitted = [detail for _, kind, detail in events
                  if kind == "server-readmitted"]
    assert {d["server"] for d in readmitted} == minority

    # Directory reconciled: every actor exactly once, nobody lost.
    records = list(bed.system.directory.records())
    assert len(records) == len(refs)
    assert len({record.ref.actor_id for record in records}) == len(refs)
    assert ({record.ref.actor_id for record in records}
            == {ref.actor_id for ref in refs})
    for record in records:
        assert record.server.running

    # The control plane kept making progress on the majority side
    # during the cut, and everywhere afterwards.  (Servers booted by a
    # late scale-out may not have completed rounds yet, but every LEM
    # must have caught up to the healed epoch.)
    original = {server.server_id for server in bed.servers}
    for server_id, lem in manager.lems.items():
        if server_id in original:
            assert lem.rounds_run >= 2
        assert lem.epoch == manager.epoch
    checker.assert_clean()


def test_migration_interrupted_by_partition_settles_cleanly():
    bed, manager, checker = build_stack()
    src, dst = bed.servers[0], bed.servers[2]
    ref = bed.system.create_actor(Heavy, server=src)
    # Start a minority -> majority transfer ~55 ms before the cut: the
    # two-phase protocol must either commit it or roll it back, never
    # leave the actor half-moved.
    done = []
    bed.sim.schedule(PARTITION_AT - 20.0,
                     lambda: done.append(bed.system.migrate_actor(ref, dst)))
    bed.run(until_ms=END)
    assert done[0].value in (True, False)
    record = bed.system.directory.lookup(ref.actor_id)
    assert record.migrating is False
    if done[0].value:
        assert record.server is dst
        assert dst.memory_used_mb >= Heavy.state_size_mb
        assert src.memory_used_mb == 0.0
    else:
        assert record.server is src
        assert src.memory_used_mb == Heavy.state_size_mb
        assert dst.memory_used_mb == 0.0
    # Either way the actor still answers (exactly one copy exists).
    client = Client(bed.system)
    out = []

    def body():
        out.append((yield client.call(ref, "noop")))

    spawn(bed.sim, body())
    bed.run(until_ms=END + 2_000.0)
    assert out == [True]
    checker.assert_clean()


def test_partition_run_is_deterministic():
    def run_once():
        bed, manager, checker = build_stack()
        events = []
        manager.add_listener(
            lambda kind, detail: events.append((bed.sim.now, kind,
                                                repr(sorted(detail)))))
        refs = [bed.system.create_actor(Spinner, server=bed.servers[i % 2])
                for i in range(6)]
        client = Client(bed.system)

        def loop(ref):
            while bed.sim.now < END - 5_000.0:
                if (yield client.call(ref, "spin", 45.0)) is None:
                    return

        for ref in refs:
            spawn(bed.sim, loop(ref))
        bed.run(until_ms=END)
        checker.assert_clean()
        return events

    first = run_once()
    second = run_once()
    assert first == second
