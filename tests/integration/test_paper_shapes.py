"""Scaled-down end-to-end checks of the paper's qualitative results.

Each test runs a miniature version of one evaluation scenario and
asserts the *shape* the paper reports (who wins, roughly by how much).
The full-size reproductions live in benchmarks/.
"""

import random

import pytest

from repro.apps.estore import run_estore_experiment
from repro.apps.halo import run_halo_interaction_experiment
from repro.apps.metadata import run_metadata_experiment
from repro.apps.pagerank import (PAGERANK_POLICY, PageRankWorker,
                                 build_pagerank, run_iterations)
from repro.baselines import OrleansBalancer
from repro.bench import build_cluster
from repro.check import InvariantChecker
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.graphs import social_graph


def test_fig5_shape_rescol_beats_default_and_none():
    common = dict(num_clients=8, duration_ms=90_000.0, period_ms=25_000.0)
    rescol = run_metadata_experiment("res-col-rule", **common)
    default = run_metadata_experiment("def-rule", **common)
    none = run_metadata_experiment("no-rule", **common)
    # The semantic rule helps a lot; the blind rule roughly doesn't.
    assert rescol.mean_after_ms < 0.75 * none.mean_after_ms
    assert default.mean_after_ms > 0.8 * none.mean_after_ms


def test_fig6a_shape_plasma_beats_orleans_on_pagerank():
    graph = social_graph(1200, 3, 5, 0.06, random.Random(2))
    rng = random.Random(104)
    placement = [rng.randrange(4) for _ in range(16)]

    def run(mode):
        bed = build_cluster(4, "m5.large", seed=4)
        deployment = build_pagerank(bed, graph, 16,
                                    placement=list(placement))
        checker = None
        if mode == "plasma":
            policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
            manager = ElasticityManager(bed.system, policy, EmrConfig(
                period_ms=4_000.0, gem_wait_ms=300.0))
            checker = InvariantChecker(manager)
            checker.attach()
            manager.start()
        elif mode == "orleans":
            manager = OrleansBalancer(bed.system, period_ms=4_000.0)
            manager.start()
        stats = run_iterations(deployment, 25)
        if checker is not None:
            checker.assert_clean()
        return sum(stats.times_ms[-5:]) / 5

    plasma = run("plasma")
    orleans = run("orleans")
    assert plasma < orleans


def test_fig6b_shape_dynamic_allocation_converges():
    graph = social_graph(1200, 3, 5, 0.06, random.Random(2))
    bed = build_cluster(1, "m5.large", seed=4, boot_delay_ms=5_000.0,
                        max_servers=8)
    deployment = build_pagerank(bed, graph, 16, placement=[0] * 16)
    policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=4_000.0, gem_wait_ms=300.0, allow_scale_out=True,
        max_scale_out_per_period=2))
    checker = InvariantChecker(manager)
    checker.attach()
    manager.start()
    stats = run_iterations(deployment, 40)
    # Fleet grew, actors spread, iterations got faster.
    assert bed.provisioner.fleet_size() > 1
    assert stats.times_ms[-1] < 0.6 * stats.times_ms[0]
    assert manager.migrations_total() >= 1
    checker.assert_clean()


def test_fig9_shape_plasma_matches_inapp_estore():
    common = dict(num_clients=24, duration_ms=110_000.0,
                  period_ms=25_000.0)
    plasma = run_estore_experiment("plasma", **common)
    inapp = run_estore_experiment("in-app", **common)
    none = run_estore_experiment("none", **common)
    assert plasma.mean_after_ms < none.mean_after_ms
    assert inapp.mean_after_ms < none.mean_after_ms
    # "quite similar": within 25% of each other.
    ratio = plasma.mean_after_ms / inapp.mean_after_ms
    assert 0.75 < ratio < 1.25


def test_fig11a_shape_interaction_rule_smoother_than_default():
    common = dict(num_clients=12, rounds=2, round_ms=25_000.0,
                  period_ms=10_000.0, heartbeat_ms=200.0)
    inter = run_halo_interaction_experiment("inter-rule", **common)
    default = run_halo_interaction_experiment("def-rule", **common)
    assert inter.mean_latency_ms < default.mean_latency_ms
    # Smoothness: the interaction rule's curve varies far less.
    inter_values = [lat for _t, lat in inter.curve]
    default_values = [lat for _t, lat in default.curve]
    inter_spread = max(inter_values) - min(inter_values)
    default_spread = max(default_values) - min(default_values)
    assert inter_spread <= default_spread


def test_table3_shape_profiling_overhead_within_percent_scale():
    from repro.apps.chatroom import run_chatroom
    base = run_chatroom(users=8, duration_ms=8_000.0, profiled=False)
    prof = run_chatroom(users=8, duration_ms=8_000.0, profiled=True,
                        profiling_overhead_cpu_ms=0.01)
    overhead = prof.mean_latency_ms / base.mean_latency_ms
    assert overhead < 1.05
