"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.actors import ActorRef
from repro.cluster import Server, WindowedMeter, instance_type
from repro.core.emr import Action, resolve_actions
from repro.core.epl import BEHAVIOR_PRIORITIES, parse_policy, tokenize
from repro.core.profiling import ActorSnapshot
from repro.graphs import (edge_cut, partition_graph, powerlaw_graph,
                          uniform_graph)
from repro.sim import Simulator
from repro.workload import WeightedChoice, cascade_split, hot_one_split


# -- windowed meters ----------------------------------------------------------

@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=100_000.0),
    st.floats(min_value=0.0, max_value=1_000.0)), min_size=1, max_size=60))
def test_meter_window_total_never_exceeds_lifetime(events):
    sim = Simulator()
    meter = WindowedMeter(sim, bucket_ms=250.0)
    for when, amount in sorted(events):
        if when > sim.now:
            sim.schedule_at(when, lambda: None)
            sim.run()
        meter.add(amount)
    total = sum(amount for _w, amount in events)
    assert abs(meter.lifetime_total - total) < 1e-6 * max(1.0, total)
    for window in (100.0, 1_000.0, 50_000.0, 1e9):
        assert 0.0 <= meter.total(window) <= total * (1 + 1e-9) + 1e-6


@given(st.floats(min_value=1.0, max_value=10_000.0),
       st.floats(min_value=0.0, max_value=500.0))
def test_meter_recent_event_always_in_window(window, amount):
    sim = Simulator()
    meter = WindowedMeter(sim, bucket_ms=100.0)
    meter.add(amount)
    assert meter.total(window) == amount


# -- EPL lexer/parser ---------------------------------------------------------

_ident = st.from_regex(r"[A-Z][A-Za-z0-9_]{0,8}", fullmatch=True)


@given(_ident, st.sampled_from(["cpu", "mem", "net"]),
       st.sampled_from(["<", ">", "<=", ">="]),
       st.floats(min_value=0, max_value=100, allow_nan=False))
def test_generated_balance_rules_parse(type_name, resource, comp, value):
    source = (f"server.{resource}.perc {comp} {value:.3f} "
              f"=> balance({{{type_name}}}, {resource});")
    policy = parse_policy(source)
    assert len(policy) == 1
    behavior = policy.rules[0].behaviors[0]
    assert behavior.actor_types == (type_name,)


@given(st.text(alphabet=" \t\n#/abcdefXYZ0123456789_.<>=(){},;",
               max_size=80))
def test_lexer_never_crashes_unexpectedly(text):
    # The lexer either tokenizes or raises the documented error type.
    from repro.core.epl import EplSyntaxError
    try:
        tokens = tokenize(text)
        assert tokens[-1].kind == "EOF"
    except EplSyntaxError:
        pass


# -- conflict resolution --------------------------------------------------------

_kinds = st.sampled_from(list(BEHAVIOR_PRIORITIES))


@st.composite
def action_lists(draw):
    sim = Simulator()
    servers = [Server(sim, instance_type("m5.large")) for _ in range(3)]
    actions = []
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        actor_id = draw(st.integers(min_value=1, max_value=5))
        kind = draw(st.sampled_from(
            ["balance", "reserve", "separate", "colocate"]))
        snap = ActorSnapshot(
            ref=ActorRef(actor_id=actor_id, type_name="W"),
            server=servers[0], cpu_perc=1.0, cpu_ms_per_min=1.0,
            mem_mb=1.0, mem_perc=0.1, net_bytes_per_min=0.0, net_perc=0.0)
        actions.append(Action(kind=kind, actor=snap, src=servers[0],
                              dst=servers[draw(st.integers(1, 2))]))
    return actions


@given(action_lists(), action_lists())
def test_resolve_actions_invariants(lem, gem):
    final = resolve_actions(lem, gem)
    ids = [action.actor_id for action in final]
    # One action per actor.
    assert len(ids) == len(set(ids))
    # Every kept action has maximal priority among its actor's proposals.
    by_actor = {}
    for action in list(lem) + list(gem):
        by_actor.setdefault(action.actor_id, []).append(action)
    for action in final:
        assert action.priority == max(a.priority
                                      for a in by_actor[action.actor_id])
    # No actions invented.
    all_inputs = set(map(id, list(lem) + list(gem)))
    assert all(id(action) in all_inputs for action in final)


# -- partitioner ----------------------------------------------------------------

@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=40, max_value=200),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_partition_invariants(k, num_nodes, seed):
    graph = powerlaw_graph(num_nodes, 3, random.Random(seed))
    result = partition_graph(graph, k, random.Random(seed + 1))
    assert len(result.assignment) == num_nodes
    assert all(0 <= part < k for part in result.assignment)
    sizes = result.sizes()
    assert sum(sizes) == num_nodes
    # No partition is empty unless k is close to the node count.
    if num_nodes >= 8 * k:
        assert min(sizes) > 0
    assert 0 <= edge_cut(graph, result.assignment) <= graph.num_edges


# -- workload distributions -------------------------------------------------------

@given(st.integers(min_value=1, max_value=100),
       st.floats(min_value=0.0, max_value=1.0))
def test_hot_one_split_sums_to_one(n, share):
    weights = hot_one_split(n, share)
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(w >= 0 for w in weights)


@given(st.integers(min_value=1, max_value=100),
       st.floats(min_value=0.01, max_value=0.9))
def test_cascade_split_sums_to_one_and_decreases(n, fraction):
    weights = cascade_split(n, fraction)
    assert abs(sum(weights) - 1.0) < 1e-9
    head = weights[:-1]  # the final catch-all bucket may break monotony
    assert all(a >= b for a, b in zip(head, head[1:]))


@given(st.lists(st.floats(min_value=0.001, max_value=10.0),
                min_size=1, max_size=20),
       st.integers(min_value=0, max_value=2**31))
def test_weighted_choice_only_returns_items(weights, seed):
    items = list(range(len(weights)))
    picker = WeightedChoice(items, weights, random.Random(seed))
    for _ in range(50):
        assert picker.pick() in items
