"""Determinism: identical seeds reproduce identical executions.

Regression baselines and the paper-shape assertions all lean on this:
the whole stack (kernel, cluster, actors, EMR) must be a pure function
of its seeds.
"""

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def run_once(seed):
    bed = build_cluster(3, seed=seed)
    rng = bed.streams.stream("load")
    refs = [bed.system.create_actor(Spinner) for _ in range(9)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0))
    manager.start()
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < 30_000.0:
            yield client.call(ref, "spin", 20.0 + rng.random() * 40.0)

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=30_000.0)
    # Actor and server ids are global counters, so two runs in one
    # process get different raw ids; normalize to per-run indices.
    actor_index = {ref.actor_id: i for i, ref in enumerate(refs)}
    server_index = {server.server_id: i
                    for i, server in enumerate(bed.servers)}
    server_by_name = {server.name: i
                      for i, server in enumerate(bed.servers)}
    placement = tuple(
        (actor_index[ref.actor_id],
         server_index[bed.system.server_of(ref).server_id])
        for ref in refs)
    migrations = tuple(
        (e.time_ms, actor_index[e.actor.actor_id],
         server_by_name[e.src], server_by_name[e.dst])
        for e in manager.migration_log)
    latencies = tuple(lat for _t, lat in client.latencies.samples)
    return placement, migrations, latencies


def test_same_seed_same_execution():
    first = run_once(42)
    second = run_once(42)
    assert first == second


def test_different_seed_different_execution():
    a = run_once(1)
    b = run_once(2)
    # Placement draws differ, so *something* must differ.
    assert a != b
