"""Determinism: identical seeds reproduce identical executions.

Regression baselines and the paper-shape assertions all lean on this:
the whole stack (kernel, cluster, actors, EMR) must be a pure function
of its seeds.
"""

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.chaos import (ChaosEngine, CrashServer, DegradeNetwork,
                         FaultPlan)
from repro.check import InvariantChecker
from repro.cluster import AvailabilityMeter
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def run_once(seed):
    bed = build_cluster(3, seed=seed)
    rng = bed.streams.stream("load")
    refs = [bed.system.create_actor(Spinner) for _ in range(9)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0))
    checker = InvariantChecker(manager)
    checker.attach()
    manager.start()
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < 30_000.0:
            yield client.call(ref, "spin", 20.0 + rng.random() * 40.0)

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=30_000.0)
    checker.assert_clean()
    # Actor and server ids are global counters, so two runs in one
    # process get different raw ids; normalize to per-run indices.
    actor_index = {ref.actor_id: i for i, ref in enumerate(refs)}
    server_index = {server.server_id: i
                    for i, server in enumerate(bed.servers)}
    server_by_name = {server.name: i
                      for i, server in enumerate(bed.servers)}
    placement = tuple(
        (actor_index[ref.actor_id],
         server_index[bed.system.server_of(ref).server_id])
        for ref in refs)
    migrations = tuple(
        (e.time_ms, actor_index[e.actor.actor_id],
         server_by_name[e.src], server_by_name[e.dst])
        for e in manager.migration_log)
    latencies = tuple(lat for _t, lat in client.latencies.samples)
    return placement, migrations, latencies


def test_same_seed_same_execution():
    first = run_once(42)
    second = run_once(42)
    assert first == second


def test_different_seed_different_execution():
    a = run_once(1)
    b = run_once(2)
    # Placement draws differ, so *something* must differ.
    assert a != b


CHAOS_PLAN = FaultPlan(faults=(
    CrashServer(at_ms=9_000.0, server_index=0),
    DegradeNetwork(at_ms=14_000.0, duration_ms=4_000.0,
                   latency_multiplier=3.0, drop_probability=0.1),
))


def run_chaos_once(seed):
    """One faulty run; returns every observable that must be replayable."""
    bed = build_cluster(3, seed=seed)
    rng = bed.streams.stream("load")
    refs = [bed.system.create_actor(Spinner) for _ in range(9)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0,
        suspicion_timeout_ms=6_000.0))
    checker = InvariantChecker(manager)
    checker.attach()
    manager.start()
    emr_events = []
    manager.add_listener(
        lambda kind, detail: emr_events.append((bed.sim.now, kind)))
    meter = AvailabilityMeter(bed.sim, window_ms=5_000.0)
    client = Client(bed.system, timeout_ms=1_000.0, max_retries=3,
                    backoff_base_ms=100.0, backoff_cap_ms=2_000.0,
                    meter=meter)
    engine = ChaosEngine(bed.system, CHAOS_PLAN, manager=manager)
    engine.start()

    def loop(ref):
        while bed.sim.now < 30_000.0:
            yield from client.reliable_call(
                ref, "spin", 20.0 + rng.random() * 40.0)

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=30_000.0)
    checker.assert_clean()

    actor_index = {ref.actor_id: i for i, ref in enumerate(refs)}
    server_by_name = {server.name: i
                      for i, server in enumerate(bed.servers)}
    migrations = tuple(
        (e.time_ms, actor_index[e.actor.actor_id],
         server_by_name[e.src], server_by_name[e.dst])
        for e in manager.migration_log)
    availability = tuple(
        (start, counts["success"], counts["failure"], counts["timeout"])
        for start, counts in meter.per_window())
    chaos_log = tuple((t, kind) for t, kind, _d in engine.log)
    events = tuple(emr_events)
    return (migrations, availability, meter.recovery_time_ms(),
            chaos_log, events, bed.system.fabric.messages_dropped,
            len(client.dead_letters), client.retries_used)


def test_same_seed_same_chaos_execution():
    # Satellite requirement: same seed + same FaultPlan => identical
    # migration logs and availability numbers.
    first = run_chaos_once(42)
    second = run_chaos_once(42)
    assert first == second


def test_chaos_run_actually_disrupted_something():
    result = run_chaos_once(42)
    migrations, availability, recovery, chaos_log, events, dropped, *_ = result
    assert any(kind == "fault-injected" for _t, kind in chaos_log)
    assert any(kind == "server-suspected" for _t, kind in events)
    assert recovery is not None and recovery > 0.0
