"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_apps_lists_all_applications(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("metadata", "pagerank", "estore", "media", "halo",
                 "btree", "piccolo", "zexpander", "cassandra"):
        assert name in out


def test_compile_bundled_app(capsys):
    assert main(["compile", "--app", "estore"]) == 0
    out = capsys.readouterr().out
    assert "compiled 3 rules" in out
    assert "warning" in out  # balance-vs-colocate conflict


def test_compile_json_output(capsys):
    assert main(["compile", "--app", "pagerank", "--json"]) == 0
    out = capsys.readouterr().out
    payload = out[out.index("{"):]
    config = json.loads(payload)
    assert config["rules"][0]["behaviors"][0]["kind"] == "balance"


def test_compile_policy_file_with_classes(tmp_path, capsys):
    policy = tmp_path / "policy.epl"
    policy.write_text(
        "Player(p) in ref(Session(s).players) => colocate(p, s);\n")
    code = main(["compile", str(policy), "--classes",
                 "repro.apps.halo:Player,Session"])
    assert code == 0
    assert "compiled 1 rules" in capsys.readouterr().out


def test_compile_invalid_policy_reports_error(tmp_path, capsys):
    policy = tmp_path / "bad.epl"
    policy.write_text("true => pin(Ghost(g));\n")
    code = main(["compile", str(policy), "--classes",
                 "repro.apps.halo:Player"])
    assert code == 1
    assert "Ghost" in capsys.readouterr().err


def test_compile_override_policy_for_app(tmp_path, capsys):
    policy = tmp_path / "alt.epl"
    policy.write_text("true => pin(Partition(p));\n")
    assert main(["compile", str(policy), "--app", "estore"]) == 0
    assert "compiled 1 rules" in capsys.readouterr().out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["compile", "--app", "nonexistent"])


def test_compile_without_target_rejected():
    with pytest.raises(SystemExit):
        main(["compile"])


def test_experiments_lists(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "fig9" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_quick_experiment_runs(capsys):
    assert main(["experiment", "fig11a", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "inter-rule" in out and "def-rule" in out


def test_bad_classes_spec_rejected(tmp_path):
    policy = tmp_path / "p.epl"
    policy.write_text("true => pin(Player(p));\n")
    with pytest.raises(SystemExit):
        main(["compile", str(policy), "--classes", "no_colon_here"])
