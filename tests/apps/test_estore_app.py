"""Tests for the E-Store application (Fig. 9 substrate)."""

import pytest

from repro.actors import Client
from repro.apps.estore import (ESTORE_POLICY, Partition, build_estore,
                               run_estore_experiment)
from repro.bench import build_cluster
from repro.core.epl import compile_source
from repro.sim import spawn


def test_read_descends_to_one_child():
    bed = build_cluster(2, instance_type="m1.small")
    setup = build_estore(bed, num_roots=2, children_per_root=3)
    client = Client(bed.system)
    rows = []

    def body():
        row = yield client.call(setup.roots[0], "read", 7)
        rows.append(row)

    spawn(bed.sim, body())
    bed.run(until_ms=5_000.0)
    assert rows == [{"key": 7, "value": 7 * 31}]
    root = bed.system.actor_instance(setup.roots[0])
    assert root.reads == 1
    child = bed.system.actor_instance(setup.children[0][7 % 3])
    assert child.reads == 1


def test_children_start_colocated_with_root():
    bed = build_cluster(4, instance_type="m1.small")
    setup = build_estore(bed, num_roots=8, children_per_root=4)
    for root, kids in zip(setup.roots, setup.children):
        home = bed.system.server_of(root)
        assert all(bed.system.server_of(kid) is home for kid in kids)


def test_home_servers_limit_respected():
    bed = build_cluster(5, instance_type="m1.small")
    setup = build_estore(bed, num_roots=8, num_home_servers=4)
    extra = bed.servers[4]
    assert not bed.system.actors_on(extra)


def test_policy_splits_into_three_rules():
    compiled = compile_source(ESTORE_POLICY, [Partition])
    assert compiled.rule_count() == 3
    assert len(compiled.resource_rules) == 2  # reserve + balance
    assert len(compiled.actor_rules) == 1     # parent-child colocate


def test_plasma_experiment_improves_latency():
    result = run_estore_experiment(
        "plasma", num_clients=24, duration_ms=100_000.0,
        period_ms=25_000.0)
    assert result.migrations >= 1
    assert result.mean_after_ms < result.mean_before_ms * 1.05


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        run_estore_experiment("surprise")
