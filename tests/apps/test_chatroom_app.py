"""Tests for the chat room microbenchmark (Table 3 substrate)."""

import pytest

from repro.apps.chatroom import run_chatroom


def test_messages_flow_and_latency_positive():
    result = run_chatroom(users=4, duration_ms=5_000.0, think_ms=50.0)
    assert result.messages_sent > 10
    assert result.mean_latency_ms > 0
    assert not result.profiled


def test_profiling_overhead_is_small():
    base = run_chatroom(users=8, duration_ms=10_000.0, profiled=False)
    prof = run_chatroom(users=8, duration_ms=10_000.0, profiled=True,
                        profiling_overhead_cpu_ms=0.01)
    ratio = prof.mean_latency_ms / base.mean_latency_ms
    # Table 3: overhead stays within a few percent even under pressure.
    assert ratio < 1.1
    assert ratio >= 0.99


def test_profiled_run_sends_comparable_volume():
    base = run_chatroom(users=8, duration_ms=10_000.0, profiled=False)
    prof = run_chatroom(users=8, duration_ms=10_000.0, profiled=True)
    assert prof.messages_sent == pytest.approx(base.messages_sent,
                                               rel=0.05)


def test_more_users_mean_more_fanout_load():
    small = run_chatroom(users=4, duration_ms=5_000.0)
    large = run_chatroom(users=12, duration_ms=5_000.0)
    assert large.mean_latency_ms >= small.mean_latency_ms
