"""Tests for the distributed PageRank application (Figs. 6-8 substrate)."""

import random

import pytest

from repro.apps.pagerank import (PAGERANK_POLICY, PageRankWorker,
                                 build_pagerank, collect_ranks,
                                 run_iterations)
from repro.baselines import MizanMigrator
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.graphs import pagerank, powerlaw_graph, social_graph


@pytest.fixture(scope="module")
def small_graph():
    return powerlaw_graph(400, 3, random.Random(11))


def test_distributed_ranks_match_reference(small_graph):
    bed = build_cluster(4)
    deployment = build_pagerank(bed, small_graph, 8)
    stats = run_iterations(deployment, 25)
    reference = pagerank(small_graph, iterations=25)
    got = collect_ranks(deployment)
    assert max(abs(a - b) for a, b in zip(reference, got)) < 1e-12
    assert len(stats.times_ms) == 25
    assert all(t > 0 for t in stats.times_ms)


def test_deltas_shrink_as_ranks_converge(small_graph):
    bed = build_cluster(4)
    deployment = build_pagerank(bed, small_graph, 8)
    stats = run_iterations(deployment, 15)
    assert stats.deltas[-1] < stats.deltas[0]
    assert stats.converged_iteration(tolerance=1e-3) is not None
    assert stats.converged_iteration(tolerance=0.0) is None


def test_every_node_owned_by_exactly_one_worker(small_graph):
    bed = build_cluster(4)
    deployment = build_pagerank(bed, small_graph, 8)
    owned = []
    for ref in deployment.workers:
        owned.extend(bed.system.actor_instance(ref).nodes)
    assert sorted(owned) == list(range(small_graph.num_nodes))


def test_balance_rule_migrates_workers_and_keeps_correctness():
    graph = social_graph(800, 3, 4, 0.05, random.Random(3))
    bed = build_cluster(4)
    rng = random.Random(9)
    placement = [rng.randrange(4) for _ in range(16)]
    deployment = build_pagerank(bed, graph, 16, placement=placement)
    policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=3_000.0, gem_wait_ms=200.0, lem_stagger_ms=10.0))
    manager.start()
    run_iterations(deployment, 20)
    assert manager.migrations_total() >= 1
    reference = pagerank(graph, iterations=20)
    got = collect_ranks(deployment)
    # Migration must never corrupt the computation.
    assert max(abs(a - b) for a, b in zip(reference, got)) < 1e-12


def test_mizan_vertex_migration_preserves_ranks(small_graph):
    bed = build_cluster(4)
    deployment = build_pagerank(bed, small_graph, 8)
    mizan = MizanMigrator(deployment, migrate_fraction=0.1,
                          imbalance_trigger=1.01)
    stats = run_iterations(deployment, 20,
                           on_iteration=mizan.on_iteration)
    assert mizan.vertices_moved > 0
    reference = pagerank(small_graph, iterations=20)
    got = collect_ranks(deployment)
    assert max(abs(a - b) for a, b in zip(reference, got)) < 1e-12
    assert len(stats.times_ms) == 20


def test_mizan_does_nothing_when_balanced():
    # A ring partitions into equal-cost parts: no trigger.
    from repro.graphs import ring_graph
    graph = ring_graph(256, hops=2)
    bed = build_cluster(4)
    deployment = build_pagerank(bed, graph, 8)
    mizan = MizanMigrator(deployment, imbalance_trigger=1.5)
    run_iterations(deployment, 5, on_iteration=mizan.on_iteration)
    assert mizan.vertices_moved == 0
