"""Coverage for app handler paths not exercised by the experiments."""

import pytest

from repro.actors import Client
from repro.apps.btree import build_btree
from repro.apps.halo import Player, Session, build_halo
from repro.apps.media import build_media_service
from repro.bench import build_cluster
from repro.sim import spawn


def run_gen(bed, gen, until=30_000.0):
    out = []

    def body():
        result = yield from gen
        out.append(result)

    spawn(bed.sim, body())
    bed.run(until_ms=bed.sim.now + until)
    assert out
    return out[0]


def test_btree_leaf_scan():
    bed = build_cluster(2)
    tree = build_btree(bed, fanout=4, leaf_count=4, key_space=400)
    client = Client(bed.system)

    def ops():
        for key in (10, 20, 30, 150):
            yield from tree.put(client, key, key * 2)
        rows = yield client.call(tree.leaves[0], "scan", 0, 99)
        return rows

    rows = run_gen(bed, ops())
    assert rows == {10: 20, 20: 40, 30: 60}


def test_halo_session_remove_player():
    bed = build_cluster(2)
    deployment = build_halo(bed, num_routers=1, num_sessions=1)
    session = deployment.sessions[0]
    player = bed.system.create_actor(Player)
    client = Client(bed.system)

    def ops():
        count = yield client.call(session, "add_player", player)
        assert count == 1
        count = yield client.call(session, "remove_player", player)
        return count

    assert run_gen(bed, ops()) == 0


def test_halo_router_decrypt_cost():
    bed = build_cluster(1, instance_type="m1.small")
    plain = build_halo(bed, num_routers=1, num_sessions=1,
                       router_cpu_ms=0.0)
    heavy = build_halo(bed, num_routers=1, num_sessions=1,
                       router_cpu_ms=10.0)
    client = Client(bed.system)
    player = bed.system.create_actor(Player)
    for deployment in (plain, heavy):
        bed.system.actor_instance(
            deployment.sessions[0]).players.append(player)
    times = {}

    def ops():
        for name, deployment in (("plain", plain), ("heavy", heavy)):
            started = bed.sim.now
            yield client.call(deployment.routers[0], "route",
                              deployment.sessions[0], player)
            times[name] = bed.sim.now - started
        return True

    run_gen(bed, ops())
    # 10 ms of decrypt demand at half speed: >= 20 ms extra.
    assert times["heavy"] >= times["plain"] + 19.0


def test_media_client_rejoin_after_leave():
    bed = build_cluster(2, instance_type="m1.small")
    service = build_media_service(bed)
    service.client_joined(0)
    service.client_left(0)
    actors = service.client_joined(0)
    client = Client(bed.system)

    def ops():
        result = yield client.call(actors.frontend, "watch",
                                   actors.stream, actors.user_info, 1)
        return result

    result = run_gen(bed, ops())
    assert result["chunk"] > 0
    assert service.active_clients() == 1


def test_media_unknown_client_leave_is_noop():
    bed = build_cluster(1, instance_type="m1.small")
    service = build_media_service(bed)
    service.client_left(99)  # never joined
    assert service.active_clients() == 0
