"""Tests for the B+ tree application (Table 1)."""

import pytest

from repro.actors import Client
from repro.apps.btree import (BTREE_POLICY, BPlusTree, InnerNode, LeafNode,
                              build_btree)
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


def run_ops(bed, gen):
    out = []

    def body():
        result = yield from gen
        out.append(result)

    spawn(bed.sim, body())
    bed.run(until_ms=bed.sim.now + 30_000.0)
    return out[0]


def test_put_then_get_roundtrip():
    bed = build_cluster(4)
    tree = build_btree(bed, fanout=4, leaf_count=16)
    client = Client(bed.system)

    def ops():
        for key in (5, 50_001, 99_999):
            yield from tree.put(client, key, f"v{key}")
        values = []
        for key in (5, 50_001, 99_999, 12_345):
            (value, _lat) = yield from tree.get(client, key)
        return True

    run_ops(bed, ops())
    # Verify through direct state: each key landed on exactly one leaf.
    stored = {}
    for leaf in tree.leaves:
        stored.update(bed.system.actor_instance(leaf).data)
    assert stored == {5: "v5", 50_001: "v50001", 99_999: "v99999"}


def test_keys_route_to_correct_leaf_ranges():
    bed = build_cluster(2)
    tree = build_btree(bed, fanout=4, leaf_count=8, key_space=800)
    client = Client(bed.system)

    def ops():
        for key in range(0, 800, 100):
            yield from tree.put(client, key, key)
        return True

    run_ops(bed, ops())
    # leaf i owns [i*100, (i+1)*100)
    for index, leaf in enumerate(tree.leaves):
        data = bed.system.actor_instance(leaf).data
        assert set(data) == {index * 100}


def test_tree_structure_levels():
    bed = build_cluster(2)
    tree = build_btree(bed, fanout=4, leaf_count=16)
    assert len(tree.inner_levels[0]) == 4   # 16 leaves / fanout 4
    assert len(tree.inner_levels[-1]) == 1  # the root
    root = bed.system.actor_instance(tree.root)
    assert not root.children_are_leaves
    assert len(root.children) == 4


def test_policy_compiles_two_rules():
    compiled = compile_source(BTREE_POLICY, [InnerNode, LeafNode])
    assert compiled.rule_count() == 2
    assert len(compiled.actor_rules) == 2   # colocate + separate


def test_rules_colocate_inner_nodes_and_spread_leaves():
    bed = build_cluster(4)
    tree = build_btree(bed, fanout=4, leaf_count=8)
    policy = compile_source(BTREE_POLICY, [InnerNode, LeafNode])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=4_000.0, gem_wait_ms=300.0))
    manager.start()
    bed.run(until_ms=20_000.0)
    # Parent/child inner nodes share a server.
    root_home = bed.system.server_of(tree.root)
    for child in bed.system.actor_instance(tree.root).children:
        assert bed.system.server_of(child) is root_home
    # Leaves do not crowd the inner-node server.
    leaf_homes = {bed.system.server_of(leaf).server_id
                  for leaf in tree.leaves}
    assert len(leaf_homes) >= 2
