"""Tests for the Metadata Server application (Fig. 5 substrate)."""

import pytest

from repro.actors import Client
from repro.apps.metadata import (METADATA_POLICY, File, Folder,
                                 build_metadata_server,
                                 run_metadata_experiment)
from repro.bench import build_cluster
from repro.core.epl import compile_source
from repro.sim import spawn


def test_open_reads_folder_then_file():
    bed = build_cluster(1, instance_type="m1.small")
    setup = build_metadata_server(bed, num_folders=2, files_per_folder=2)
    client = Client(bed.system)
    results = []

    def body():
        meta = yield client.call(setup.folders[0], "open", 1)
        results.append(meta)

    spawn(bed.sim, body())
    bed.run(until_ms=10_000.0)
    assert results == [{"size": 4096}]
    folder = bed.system.actor_instance(setup.folders[0])
    assert folder.opens == 1
    file_instance = bed.system.actor_instance(setup.files[0][1])
    assert file_instance.reads == 1


def test_policy_compiles_with_one_rule():
    compiled = compile_source(METADATA_POLICY, [Folder, File])
    assert compiled.rule_count() == 1
    assert len(compiled.actor_rules) == 1    # the colocate part
    assert len(compiled.resource_rules) == 1  # the reserve part


def test_rule_moves_hot_folder_with_its_files():
    result = run_metadata_experiment(
        "res-col-rule", num_clients=8, duration_ms=70_000.0,
        period_ms=20_000.0)
    # The hot folder (reserve) plus its 8 files (colocate).
    assert result.migrations == 9
    assert result.mean_after_ms < result.mean_before_ms


def test_no_rule_setup_never_migrates():
    result = run_metadata_experiment(
        "no-rule", num_clients=8, duration_ms=50_000.0,
        period_ms=20_000.0)
    assert result.migrations == 0
    assert result.mean_after_ms == pytest.approx(result.mean_before_ms,
                                                 rel=0.15)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        run_metadata_experiment("bogus")
