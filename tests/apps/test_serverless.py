"""Tests for the serverless + storage-tier substrate (paper §2.1)."""

import random

import pytest

from repro.graphs import pagerank, powerlaw_graph
from repro.serverless import (FunctionPlatform, ServerlessPageRank,
                              StorageTier, upload_graph)
from repro.sim import Simulator, Timeout, spawn


def drive(sim, gen, until=600_000.0):
    out = []

    def body():
        result = yield from gen
        out.append(result)

    spawn(sim, body())
    sim.run(until=until)
    assert out, "driver did not finish"
    return out[0]


# -- storage tier ----------------------------------------------------------------

def test_put_get_roundtrip_with_latency():
    sim = Simulator()
    store = StorageTier(sim, read_latency_ms=10.0, write_latency_ms=25.0)

    def body():
        yield store.put("k", {"v": 1}, 100.0)
        write_done = sim.now
        value = yield store.get("k")
        return write_done, sim.now, value

    write_done, read_done, value = drive(sim, body())
    assert value == {"v": 1}
    assert write_done >= 25.0                 # base write latency
    assert read_done - write_done >= 10.0     # base read latency


def test_get_missing_key_returns_none():
    sim = Simulator()
    store = StorageTier(sim)

    def body():
        value = yield store.get("missing")
        return value

    assert drive(sim, body()) is None


def test_large_item_pays_transfer_time():
    sim = Simulator()
    store = StorageTier(sim, write_latency_ms=0.0, bytes_per_ms=100.0)

    def body():
        yield store.put("big", "x", 10_000.0)
        return sim.now

    assert drive(sim, body()) >= 100.0


def test_concurrency_limit_queues_requests():
    sim = Simulator()
    store = StorageTier(sim, write_latency_ms=10.0, concurrency=1)

    def body():
        first = store.put("a", 1, 0.0)
        second = store.put("b", 2, 0.0)
        yield first
        t_first = sim.now
        yield second
        return t_first, sim.now

    t_first, t_second = drive(sim, body())
    assert t_second >= t_first + 10.0  # serialized behind one worker


def test_stats_accounting():
    sim = Simulator()
    store = StorageTier(sim)

    def body():
        yield store.put("a", 1, 500.0)
        yield store.get("a")
        yield store.get("nope")
        return True

    drive(sim, body())
    assert store.stats.writes == 1
    assert store.stats.reads == 2
    assert store.stats.bytes_written == 500.0
    assert store.mean_latency_ms() > 0


# -- function platform -----------------------------------------------------------

def _noop(platform, payload):
    yield Timeout(platform.sim, 5.0)
    return payload


def test_invoke_runs_function_and_returns_result():
    sim = Simulator()
    platform = FunctionPlatform(sim, cold_start_ms=100.0)
    platform.register("echo", _noop)

    def body():
        result = yield platform.invoke("echo", "hello")
        return result, sim.now

    result, elapsed = drive(sim, body())
    assert result == "hello"
    assert elapsed >= 105.0  # cold start + body
    assert platform.stats.cold_starts == 1


def test_warm_container_skips_cold_start():
    sim = Simulator()
    platform = FunctionPlatform(sim, cold_start_ms=100.0)
    platform.register("echo", _noop)

    def body():
        yield platform.invoke("echo", 1)
        warm_start = sim.now
        yield platform.invoke("echo", 2)
        return sim.now - warm_start

    warm_elapsed = drive(sim, body())
    assert warm_elapsed < 100.0
    assert platform.stats.cold_starts == 1
    assert platform.stats.invocations == 2


def test_parallel_invocations_scale_out_containers():
    sim = Simulator()
    platform = FunctionPlatform(sim, cold_start_ms=50.0)
    platform.register("echo", _noop)

    def body():
        signals = [platform.invoke("echo", i) for i in range(8)]
        results = []
        for signal in signals:
            value = yield signal
            results.append(value)
        return results

    results = drive(sim, body())
    assert sorted(results) == list(range(8))
    assert platform.stats.cold_starts == 8  # all parallel, all cold


def test_keep_alive_reclaims_idle_containers():
    sim = Simulator()
    platform = FunctionPlatform(sim, cold_start_ms=10.0,
                                keep_alive_ms=1_000.0)
    platform.register("echo", _noop)

    def body():
        yield platform.invoke("echo", 1)
        yield Timeout(sim, 5_000.0)  # past keep-alive
        yield platform.invoke("echo", 2)
        return True

    drive(sim, body())
    assert platform.stats.cold_starts == 2


def test_unknown_function_rejected():
    sim = Simulator()
    platform = FunctionPlatform(sim)
    with pytest.raises(KeyError):
        platform.invoke("ghost")


# -- serverless PageRank ------------------------------------------------------------

def test_serverless_pagerank_matches_reference():
    graph = powerlaw_graph(300, 3, random.Random(5))
    sim = Simulator()
    store = StorageTier(sim)
    platform = FunctionPlatform(sim)
    upload_graph(sim, store, graph, 4)
    serverless = ServerlessPageRank(sim, store, platform, 4,
                                    graph.num_nodes)
    outcome = serverless.run(15)
    reference = pagerank(graph, iterations=15)
    got = serverless.collect_ranks()
    assert max(abs(a - b) for a, b in zip(reference, got)) < 1e-12
    assert len(outcome.iteration_ms) == 15
    assert outcome.storage_ops > 15 * 4 * 2  # every round hits the tier


def test_upload_time_scales_with_serialized_size():
    graph = powerlaw_graph(300, 3, random.Random(5))
    sim_small = Simulator()
    store_small = StorageTier(sim_small)
    small = upload_graph(sim_small, store_small, graph, 4,
                         bytes_per_node=16.0, bytes_per_edge=8.0)
    sim_big = Simulator()
    store_big = StorageTier(sim_big)
    big = upload_graph(sim_big, store_big, graph, 4,
                       bytes_per_node=1600.0, bytes_per_edge=800.0)
    assert big["upload_ms"] > 10 * small["upload_ms"]
