"""Tests for the Media Service application (Fig. 10 substrate)."""

import pytest

from repro.actors import Client
from repro.apps.media import (MEDIA_ACTOR_CLASSES, MEDIA_POLICY,
                              MediaService, build_media_service,
                              run_media_experiment)
from repro.bench import build_cluster
from repro.core.epl import compile_source
from repro.sim import spawn


def test_eight_actor_types():
    assert len(MEDIA_ACTOR_CLASSES) == 8
    names = {cls.__name__ for cls in MEDIA_ACTOR_CLASSES}
    assert {"FrontEnd", "VideoStream", "UserInfo", "MovieReview",
            "ReviewEditor", "UserReview", "ReviewChecker",
            "MovieInfo"} == names


def test_policy_has_six_rules_as_in_table1():
    compiled = compile_source(MEDIA_POLICY, MEDIA_ACTOR_CLASSES)
    assert compiled.rule_count() == 6


def test_clients_share_actors_in_pairs():
    bed = build_cluster(2, instance_type="m1.small")
    service = build_media_service(bed)
    a = service.client_joined(0)
    b = service.client_joined(1)
    c = service.client_joined(2)
    # Clients 0 and 1 share; client 2 starts a new pool.
    assert a.frontend == b.frontend
    assert a.stream == b.stream
    assert c.frontend != a.frontend
    # Per-client actors are private.
    assert len({a.user_info, b.user_info, c.user_info}) == 3


def test_client_departure_frees_actors():
    bed = build_cluster(2, instance_type="m1.small")
    service = build_media_service(bed)
    a = service.client_joined(0)
    b = service.client_joined(1)
    before = bed.system.directory.count()
    service.client_left(0)
    # Only client 0's private actors go; shared ones remain for client 1.
    assert bed.system.directory.count() == before - 2
    service.client_left(1)
    assert bed.system.directory.count() == before - 2 - 2 - 3
    assert service.active_clients() == 0


def test_watch_and_review_flows():
    bed = build_cluster(2, instance_type="m1.small")
    service = build_media_service(bed)
    actors = service.client_joined(0)
    client = Client(bed.system)
    outputs = []

    def body():
        watched = yield client.call(actors.frontend, "watch",
                                    actors.stream, actors.user_info, 3)
        reviewed = yield client.call(actors.frontend, "review",
                                     actors.editor, actors.user_review,
                                     3, 400)
        outputs.append((watched, reviewed))

    spawn(bed.sim, body())
    bed.run(until_ms=10_000.0)
    watched, reviewed = outputs[0]
    assert watched["info"]["movie"] == 3
    assert reviewed is True
    stream = bed.system.actor_instance(actors.stream)
    assert stream.chunks_streamed == 1
    user_review = bed.system.actor_instance(actors.user_review)
    assert user_review.reviews == [(3, 400)]


def test_movie_review_actors_get_pinned_by_rule():
    bed = build_cluster(2, instance_type="m1.small")
    from repro.core import ElasticityManager, EmrConfig
    service = build_media_service(bed)
    policy = compile_source(MEDIA_POLICY, MEDIA_ACTOR_CLASSES)
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=4_000.0, gem_wait_ms=300.0))
    manager.start()
    bed.run(until_ms=10_000.0)
    for genre in service.genres:
        assert bed.system.directory.lookup(genre.actor_id).pinned


def test_small_wave_experiment_tracks_clients():
    result = run_media_experiment(
        period_ms=20_000.0, num_clients=16, initial_servers=2,
        max_servers=8, join_mean_ms=20_000.0, leave_mean_ms=100_000.0,
        sigma_ms=10_000.0, duration_ms=150_000.0, think_ms=200.0)
    peaks = max(v for _t, v in result.client_curve)
    assert peaks >= 12                      # most clients were active
    assert result.client_curve[-1][1] <= 2  # and left by the end
    assert result.mean_latency_ms > 0
