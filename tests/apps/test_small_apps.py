"""Tests for Piccolo, zExpander, and Cassandra applications (Table 1)."""

import pytest

from repro.actors import Client
from repro.apps.cassandra import (CASSANDRA_POLICY, Replica,
                                  build_cassandra, replica_spread)
from repro.apps.piccolo import (PICCOLO_POLICY, PiccoloWorker, Table,
                                build_piccolo, run_piccolo_rounds)
from repro.apps.zexpander import (ZEXPANDER_POLICY, CacheLeaf, IndexNode,
                                  build_zexpander)
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


# -- Piccolo ------------------------------------------------------------------

def test_piccolo_rounds_accumulate_into_tables():
    bed = build_cluster(2)
    job = build_piccolo(bed, num_workers=4, keys_per_partition=16)
    times = run_piccolo_rounds(job, rounds=3)
    assert len(times) == 3
    for table in job.tables:
        store = bed.system.actor_instance(table).store
        # Deltas compound: +1, +2, +4 over three rounds.
        assert store[0] == 1.0 + 2.0 + 4.0


def test_piccolo_policy_and_colocation():
    compiled = compile_source(PICCOLO_POLICY, [PiccoloWorker, Table])
    assert compiled.rule_count() == 2
    bed = build_cluster(3)
    job = build_piccolo(bed, num_workers=3)
    # Workers start away from their tables by construction.
    assert any(bed.system.server_of(w) is not bed.system.server_of(t)
               for w, t in zip(job.workers, job.tables))
    manager = ElasticityManager(bed.system, compiled, EmrConfig(
        period_ms=4_000.0, gem_wait_ms=300.0))
    manager.start()
    bed.run(until_ms=15_000.0)
    for worker, table in zip(job.workers, job.tables):
        assert bed.system.server_of(worker) is bed.system.server_of(table)


def test_piccolo_work_scales_skew_compute():
    bed = build_cluster(2)
    job = build_piccolo(bed, num_workers=2,
                        work_scales=[1.0, 5.0])
    heavy = bed.system.actor_instance(job.workers[1])
    assert heavy.work_scale == 5.0


# -- zExpander ------------------------------------------------------------------

def test_zexpander_hot_and_cold_paths():
    bed = build_cluster(2)
    cache = build_zexpander(bed, num_leaves=2)
    client = Client(bed.system)
    results = []

    def body():
        yield client.call(cache.index, "put", 1, "hot-value", True)
        yield client.call(cache.index, "put", 42, "cold-value")
        hot = yield client.call(cache.index, "get", 1)
        cold = yield client.call(cache.index, "get", 42)
        miss = yield client.call(cache.index, "get", 777)
        results.append((hot, cold, miss))

    spawn(bed.sim, body())
    bed.run(until_ms=10_000.0)
    assert results == [("hot-value", "cold-value", None)]
    index = bed.system.actor_instance(cache.index)
    assert index.hot_hits == 1
    assert index.cold_reads == 2


def test_zexpander_reserve_rule_moves_leaves_off_crowded_server():
    bed = build_cluster(3, instance_type="m1.small")
    cache = build_zexpander(bed, num_leaves=5)
    # 5 leaves x 256 MB + 32 MB index on one 1.7 GB m1.small: mem > 70%.
    compiled = compile_source(ZEXPANDER_POLICY, [IndexNode, CacheLeaf])
    manager = ElasticityManager(bed.system, compiled, EmrConfig(
        period_ms=4_000.0, gem_wait_ms=300.0))
    manager.start()
    bed.run(until_ms=20_000.0)
    assert manager.migrations_total() >= 1
    homes = {bed.system.server_of(leaf).server_id
             for leaf in cache.leaves}
    assert len(homes) >= 2


# -- Cassandra ---------------------------------------------------------------------

def test_cassandra_write_replicates_to_peers():
    bed = build_cluster(3)
    table = build_cassandra(bed, num_shards=1, replication_factor=3)
    group = table.shards[0]
    client = Client(bed.system)

    def body():
        yield client.call(group[0], "write", 9, "value")
        yield from client.timed_call(group[0], "read", 9)

    spawn(bed.sim, body())
    bed.run(until_ms=10_000.0)
    for replica in group:
        assert bed.system.actor_instance(replica).store.get(9) == "value"


def test_cassandra_separate_rule_spreads_replicas():
    bed = build_cluster(3)
    table = build_cassandra(bed, num_shards=2, replication_factor=3,
                            all_on_first=True)
    assert replica_spread(table) == {0: 1, 1: 1}  # worst case to start
    compiled = compile_source(CASSANDRA_POLICY, [Replica])
    manager = ElasticityManager(bed.system, compiled, EmrConfig(
        period_ms=4_000.0, gem_wait_ms=300.0))
    manager.start()
    bed.run(until_ms=40_000.0)
    spread = replica_spread(table)
    assert all(count >= 2 for count in spread.values())
