"""Tests for the Halo Presence Service (Fig. 11 substrate)."""

import pytest

from repro.actors import Client
from repro.apps.halo import (HALO_INTERACTION_POLICY, Player, Router,
                             Session, build_halo,
                             run_halo_gem_experiment,
                             run_halo_interaction_experiment)
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


def test_heartbeat_path_router_session_player():
    bed = build_cluster(2, instance_type="m1.small")
    deployment = build_halo(bed, num_routers=1, num_sessions=1)
    session = deployment.sessions[0]
    player = bed.system.create_actor(Player)
    bed.system.actor_instance(session).players.append(player)
    client = Client(bed.system)
    acks = []

    def body():
        ack = yield client.call(deployment.routers[0], "route",
                                session, player)
        acks.append(ack)

    spawn(bed.sim, body())
    bed.run(until_ms=5_000.0)
    assert acks == [True]
    assert bed.system.actor_instance(session).heartbeats == 1
    assert bed.system.actor_instance(player).beats == 1


def test_interaction_rule_pins_session_and_colocates_player():
    bed = build_cluster(4, instance_type="m1.small")
    deployment = build_halo(bed, num_routers=2, num_sessions=2)
    policy = compile_source(HALO_INTERACTION_POLICY,
                            [Router, Session, Player])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0))
    manager.start()
    session = deployment.sessions[0]
    # Created with the rule-aware placement hint, as the app does.
    player = bed.system.create_actor(Player, related=session)
    bed.system.actor_instance(session).players.append(player)
    assert bed.system.server_of(player) is bed.system.server_of(session)
    bed.run(until_ms=12_000.0)
    assert bed.system.directory.lookup(session.actor_id).pinned


def test_interaction_experiment_beats_default_rule():
    common = dict(num_clients=12, rounds=2, round_ms=30_000.0,
                  period_ms=10_000.0, heartbeat_ms=200.0)
    inter = run_halo_interaction_experiment("inter-rule", **common)
    default = run_halo_interaction_experiment("def-rule", **common)
    assert inter.mean_latency_ms < default.mean_latency_ms
    assert inter.migrations == 0  # placement was right from the start


def test_gem_experiment_spreads_routers():
    result = run_halo_gem_experiment(
        gem_count=1, num_servers=16, num_sessions=16, num_routers=8,
        num_clients=24, period_ms=15_000.0, duration_ms=120_000.0,
        router_cpu_ms=8.0, heartbeat_ms=50.0, routers_on_first=2)
    assert result.migrations >= 1
    assert result.settle_latency_ms > 0
    # Latency settles below the initial congested level.
    early = [lat for t, lat in result.curve if t < 30_000.0]
    assert result.settle_latency_ms <= sum(early) / len(early)


def test_gem_count_variants_all_work():
    settles = {}
    for gems in (1, 2):
        result = run_halo_gem_experiment(
            gem_count=gems, num_servers=8, num_sessions=8,
            num_routers=4, num_clients=12, period_ms=15_000.0,
            duration_ms=90_000.0, router_cpu_ms=8.0, heartbeat_ms=50.0,
            routers_on_first=1)
        settles[gems] = result.settle_latency_ms
    # Using more GEMs has only a modest impact (paper Fig. 11c).
    assert settles[2] < settles[1] * 2.0


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        run_halo_interaction_experiment("nope")
