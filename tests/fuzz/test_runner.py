"""Scenario runner: determinism and checker integration."""

import pytest

from repro.fuzz import Scenario, run_scenario

BALANCE = ("server.cpu.perc > 15 or server.cpu.perc < 10 "
           "=> balance({Partition}, cpu);")


def small_scenario(**overrides):
    base = dict(
        seed=5, app="estore", servers=2, instance_type="m1.small",
        duration_ms=8_000.0, period_ms=2_000.0, gem_wait_ms=200.0,
        rules=(BALANCE,), clients=4, think_ms=5.0,
        app_params={"roots": 2, "children_per_root": 1,
                    "skew_fraction": 0.1, "pack": True})
    base.update(overrides)
    return Scenario(**base)


def test_healthy_run_is_clean():
    result = run_scenario(small_scenario())
    assert result.ok, result.summary()
    assert result.checks_run > 0
    assert result.sim_time_ms >= 8_000.0


def test_same_scenario_same_outcome():
    """Bit-for-bit replayability is what makes shrunk artifacts useful:
    the same scenario must produce the same migrations, checks, and
    violations every time, including across the process-global id
    counters the runner resets."""
    first = run_scenario(small_scenario())
    second = run_scenario(small_scenario())
    assert first.migrations == second.migrations
    assert first.checks_run == second.checks_run
    assert [str(v) for v in first.violations] == \
        [str(v) for v in second.violations]
    assert first.sim_time_ms == second.sim_time_ms


def test_packed_small_cluster_migrates():
    """The packed topology plus a low balance band must produce
    migrations — otherwise the fuzzer exercises nothing."""
    result = run_scenario(small_scenario())
    assert result.migrations > 0


def test_faulty_run_records_faults():
    scenario = small_scenario(
        seed=6,
        faults=({"fault": "crash-server", "at_ms": 4_000.0,
                 "server_index": 1},),
        suspicion_timeout_ms=3_000.0)
    result = run_scenario(scenario)
    assert result.error is None, result.error
    assert not result.violations, "\n".join(
        str(v) for v in result.violations)


@pytest.mark.parametrize("app, params, pin_type", [
    ("pagerank", {"partitions": 4, "nodes": 40, "edges_per_node": 3,
                  "pack": True}, "PageRankWorker"),
    ("chatroom", {"rooms": 2, "users_per_room": 2, "message_bytes": 64,
                  "pack": True}, "ChatRoom"),
])
def test_all_apps_run(app, params, pin_type):
    scenario = small_scenario(
        seed=7, app=app, app_params=params,
        rules=(f"true => pin({pin_type}(x));",))
    result = run_scenario(scenario)
    assert result.error is None, f"{app}: {result.error}"
    assert not result.violations, f"{app}: {result.violations[0]}"


def test_strict_mode_clean_run_does_not_raise():
    result = run_scenario(small_scenario(), strict=True)
    assert result.ok


def test_partitioned_run_counts_fabric_drops():
    # PageRank spread over the fleet gossips across servers, so the cut
    # actually eats traffic (a packed app would dodge the fabric).
    scenario = small_scenario(
        seed=8, servers=3, app="pagerank", rules=(),
        app_params={"partitions": 6, "nodes": 60, "edges_per_node": 3,
                    "pack": False},
        duration_ms=10_000.0,
        faults=({"fault": "partition-network", "at_ms": 2_000.0,
                 "duration_ms": 3_000.0, "group": (0,)},),
        suspicion_timeout_ms=3_000.0)
    result = run_scenario(scenario)
    assert result.ok, result.summary()
    assert result.partition_drops > 0
    assert result.messages_dropped >= result.partition_drops
    assert "dropped" in result.summary()


def test_partition_campaign_is_violation_free():
    """Acceptance sweep: a fixed block of partition-profile seeds (every
    scenario contains a network cut) must run to completion with zero
    invariant violations.  Any failure here is replayable by seed."""
    from repro.fuzz import generate_scenario

    for seed in range(12):
        scenario = generate_scenario(seed, profile="partition")
        result = run_scenario(scenario)
        assert result.error is None, f"seed {seed}: {result.error}"
        assert not result.violations, \
            f"seed {seed}: {result.violations[0]}"
