"""Scenario generator: determinism, validity, and coverage."""

import pytest

from repro.core.epl import compile_source
from repro.fuzz import Scenario, generate_scenario
from repro.fuzz.runner import actor_classes_for
from repro.fuzz.scenario import APPS

SEEDS = range(40)


def test_same_seed_same_scenario():
    for seed in SEEDS:
        assert generate_scenario(seed) == generate_scenario(seed)


def test_different_seeds_differ():
    import json
    scenarios = {json.dumps(generate_scenario(seed).to_jsonable(),
                            sort_keys=True) for seed in SEEDS}
    # Not every pair differs (small parameter space) but the campaign
    # must not collapse onto a handful of shapes.
    assert len(scenarios) >= len(SEEDS) * 3 // 4


@pytest.mark.parametrize("seed", [0, 7, 23, 1_000_003])
def test_scenario_round_trips_through_json(seed):
    scenario = generate_scenario(seed)
    assert Scenario.from_jsonable(scenario.to_jsonable()) == scenario


def test_from_jsonable_rejects_unknown_fields():
    data = generate_scenario(0).to_jsonable()
    data["warp_factor"] = 9
    with pytest.raises(ValueError, match="warp_factor"):
        Scenario.from_jsonable(data)


def test_from_jsonable_rejects_wrong_format():
    data = generate_scenario(0).to_jsonable()
    data["format"] = "something-else/1"
    with pytest.raises(ValueError, match="format"):
        Scenario.from_jsonable(data)


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_policy_compiles(seed):
    """Every generated rule set must compile against the app's actors —
    a generator that emits invalid EPL fuzzes the compiler, not the
    elasticity stack."""
    scenario = generate_scenario(seed)
    compiled = compile_source(scenario.policy_source(),
                              actor_classes_for(scenario.app))
    assert compiled.rule_count() >= len(scenario.rules)


def test_campaign_covers_all_apps():
    apps = {generate_scenario(seed).app for seed in range(60)}
    assert apps == set(APPS)


def test_campaign_covers_faults_and_autoscale():
    scenarios = [generate_scenario(seed) for seed in range(60)]
    assert any(s.faults for s in scenarios)
    assert any(not s.faults for s in scenarios)
    assert any(s.allow_scale_out or s.allow_scale_in for s in scenarios)


def test_partition_profile_always_includes_a_cut():
    for seed in range(30):
        scenario = generate_scenario(seed, profile="partition")
        partitions = [f for f in scenario.faults
                      if f["fault"] == "partition-network"]
        assert partitions, f"seed {seed} generated no partition"
        assert scenario.servers >= 3
        for fault in partitions:
            assert 0 < len(fault["group"]) < scenario.servers


def test_partition_profile_does_not_perturb_default_mapping():
    for seed in range(30):
        assert generate_scenario(seed) == generate_scenario(
            seed, profile="default")


def test_durability_profile_always_checkpoints_through_a_crash():
    for seed in range(30):
        scenario = generate_scenario(seed, profile="durability")
        assert scenario.servers >= 3
        durability = scenario.durability
        assert durability is not None and durability["enabled"]
        assert durability["checkpoint_interval_ms"] > 0
        assert durability["replication_factor"] < scenario.servers
        # Every durability scenario exercises recovery: at least one
        # crash, and a failure detector armed to resurrect the victims.
        crashes = [f for f in scenario.faults
                   if f["fault"] == "crash-server"]
        assert crashes, f"seed {seed} generated no crash"
        assert scenario.suspicion_timeout_ms is not None
        assert "durable" in scenario.describe()


def test_durability_profile_is_deterministic():
    for seed in range(30):
        assert generate_scenario(seed, profile="durability") == \
            generate_scenario(seed, profile="durability")


def test_durability_scenario_round_trips_through_json():
    scenario = generate_scenario(3, profile="durability")
    assert Scenario.from_jsonable(scenario.to_jsonable()) == scenario


def test_predurability_artifacts_still_load():
    """Corpus artifacts written before the durability field existed have
    no ``durability`` key — they must keep loading, with durability off."""
    data = generate_scenario(0).to_jsonable()
    data.pop("durability", None)
    scenario = Scenario.from_jsonable(data)
    assert scenario.durability is None


def test_overload_profile_always_storms_a_protected_cluster():
    from repro.overload import MAILBOX_POLICIES, OverloadConfig
    for seed in range(30):
        scenario = generate_scenario(seed, profile="overload")
        overload = scenario.overload
        assert overload is not None, f"seed {seed} generated no overload"
        kwargs = dict(overload)
        jitter = kwargs.pop("client_jitter_frac", 0.0)
        assert 0.0 <= jitter <= 1.0
        # Every remaining key must construct a valid OverloadConfig.
        config = OverloadConfig(**kwargs)
        assert config.policy in MAILBOX_POLICIES
        assert config.mailbox_capacity > 0
        assert (config.brownout_exit_cpu_perc
                < config.brownout_enter_cpu_perc)
        # Every overload scenario actually applies load pressure.
        storms = [f for f in scenario.faults
                  if f["fault"] in ("event-storm", "hot-key-flood")]
        assert storms, f"seed {seed} generated no load storm"
        for storm in storms:
            assert storm["rate_per_ms"] > 0
            assert storm["at_ms"] + storm["duration_ms"] \
                <= scenario.duration_ms
        assert "overload" in scenario.describe()


def test_overload_profile_is_deterministic():
    for seed in range(30):
        assert generate_scenario(seed, profile="overload") == \
            generate_scenario(seed, profile="overload")


def test_overload_profile_does_not_perturb_other_profiles():
    """The overload profile's extra RNG draws are branch-confined: the
    default/partition/durability seed mappings predate it and must stay
    bit-identical (corpus artifacts encode those mappings)."""
    for seed in range(20):
        assert generate_scenario(seed) == generate_scenario(
            seed, profile="default")
    generate_scenario(5, profile="overload")
    # Interleaving overload generation must not leak state either.
    assert generate_scenario(6) == generate_scenario(6, profile="default")


def test_overload_scenario_round_trips_through_json():
    scenario = generate_scenario(3, profile="overload")
    assert Scenario.from_jsonable(scenario.to_jsonable()) == scenario


def test_preoverload_artifacts_still_load():
    """Corpus artifacts written before the overload field existed must
    keep loading, with overload protection off."""
    data = generate_scenario(0).to_jsonable()
    data.pop("overload", None)
    scenario = Scenario.from_jsonable(data)
    assert scenario.overload is None


def test_scale_chaos_profile_always_attacks_the_control_plane():
    chaos_kinds = {"kill-root", "kill-gem", "crash-server",
                   "partition-network"}
    for seed in range(30):
        scenario = generate_scenario(seed, profile="scale-chaos")
        assert scenario.control_plane == "hierarchical"
        assert scenario.servers >= 6
        assert scenario.server_group_size in (2, 3, 4)
        # Without suspicion a killed leaf is never detected, so
        # promotion/adoption would never run.
        assert scenario.suspicion_timeout_ms is not None
        assert scenario.faults, f"seed {seed} generated no chaos"
        leaf_pool = (-(-scenario.servers // scenario.server_group_size)
                     * scenario.gem_count)
        for fault in scenario.faults:
            assert fault["fault"] in chaos_kinds
            assert 0 < fault["at_ms"] < scenario.duration_ms
            if fault["fault"] == "kill-gem":
                assert 0 <= fault["gem_id"] < leaf_pool


def test_scale_chaos_profile_is_deterministic():
    for seed in range(30):
        assert generate_scenario(seed, profile="scale-chaos") == \
            generate_scenario(seed, profile="scale-chaos")


def test_scale_chaos_shares_the_scale_topology_draws():
    """A seed's cluster shape must be bit-identical under ``scale`` and
    ``scale-chaos`` — only the fault plan (drawn last) and the no-draw
    suspicion override may differ, so a chaos run reproduces the exact
    topology its calm twin mapped."""
    for seed in range(30):
        calm = generate_scenario(seed, profile="scale").to_jsonable()
        chaos = generate_scenario(
            seed, profile="scale-chaos").to_jsonable()
        for data in (calm, chaos):
            data.pop("faults")
            data.pop("suspicion_timeout_ms")
        assert calm == chaos, f"seed {seed} topology diverged"


def test_scale_chaos_scenario_round_trips_through_json():
    scenario = generate_scenario(3, profile="scale-chaos")
    assert Scenario.from_jsonable(scenario.to_jsonable()) == scenario


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="profile"):
        generate_scenario(0, profile="tsunami")


def test_scenario_validation():
    with pytest.raises(ValueError):
        Scenario(seed=1, app="nosuchapp")
    with pytest.raises(ValueError):
        Scenario(seed=1, app="estore", servers=0)
    with pytest.raises(ValueError):
        Scenario(seed=1, app="estore", duration_ms=-5.0)
