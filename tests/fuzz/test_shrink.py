"""Shrinking, and the end-to-end mutation-catch acceptance test.

The acceptance test deliberately breaks placement stability with a
one-line mutation (``EmrConfig.stability_window_ms`` neutered to 0) and
demands that the invariant checker catches it, the shrinker minimizes
it while preserving the failure signature, and the written artifact
replays to the same failure.
"""

import json

import pytest

from repro.cli import _write_artifact, load_fuzz_scenario
from repro.fuzz import (Scenario, failure_signature, run_scenario,
                        same_failure, shrink)

BALANCE = ("server.cpu.perc > 15 or server.cpu.perc < 10 "
           "=> balance({Partition}, cpu);")


def churny_scenario():
    """Packed cluster + low balance band + explicit stability window:
    migrations recur every period, so a runtime that forgets the
    stability window re-migrates fresh actors immediately."""
    return Scenario(
        seed=11, app="estore", servers=3, instance_type="m1.small",
        duration_ms=25_000.0, period_ms=5_000.0, stability_ms=12_000.0,
        gem_wait_ms=200.0, rules=(BALANCE,), clients=6, think_ms=5.0,
        app_params={"roots": 4, "children_per_root": 1,
                    "skew_fraction": 0.1, "pack": True})


def test_signature_distinguishes_crash_from_violation():
    healthy = run_scenario(churny_scenario())
    assert healthy.ok, healthy.summary()
    # Fabricate the two failure shapes without re-running anything.
    crash = type(healthy)(scenario=healthy.scenario, error="boom")
    assert failure_signature(crash)[0] == "crash"
    assert not same_failure(failure_signature(crash), healthy)


def test_stability_mutation_is_caught_and_shrunk(monkeypatch, tmp_path):
    from repro.core.emr.config import EmrConfig
    # THE one-line mutation: the runtime stops honouring the stability
    # window.  The checker derives the expected window from the raw
    # config fields, not from this helper, so it must disagree.
    monkeypatch.setattr(EmrConfig, "stability_window_ms",
                        lambda self: 0.0)

    scenario = churny_scenario()
    result = run_scenario(scenario)
    assert not result.ok, "mutation went unnoticed"
    names = {v.invariant for v in result.violations}
    assert "stability-window" in names, names

    signature = failure_signature(result)
    shrunk, shrunk_result, runs = shrink(scenario, result, max_runs=40)
    assert runs > 0
    assert same_failure(signature, shrunk_result)
    assert "stability-window" in {
        v.invariant for v in shrunk_result.violations}
    # The shrinker must never grow the scenario.
    assert len(shrunk.rules) <= len(scenario.rules)
    assert shrunk.duration_ms <= scenario.duration_ms
    assert shrunk.servers <= scenario.servers

    # The written artifact replays to the same failure.
    path = _write_artifact(str(tmp_path), scenario.seed, shrunk,
                           shrunk_result, runs)
    with open(path) as handle:
        artifact = json.load(handle)
    assert artifact["format"] == "repro-fuzz-artifact/1"
    replayed = run_scenario(load_fuzz_scenario(path))
    assert same_failure(signature, replayed)


def test_shrink_gives_up_gracefully_on_budget():
    from repro.core.emr.config import EmrConfig
    import unittest.mock as mock
    with mock.patch.object(EmrConfig, "stability_window_ms",
                           lambda self: 0.0):
        scenario = churny_scenario()
        result = run_scenario(scenario)
        assert not result.ok
        shrunk, shrunk_result, runs = shrink(scenario, result,
                                             max_runs=1)
        assert runs <= 1
        # Whatever it returns must still exhibit the failure.
        assert same_failure(failure_signature(result), shrunk_result)
