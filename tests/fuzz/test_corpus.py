"""Seed-corpus regression tests.

Every file in ``tests/fuzz/corpus/`` is a shrunk failure artifact from a
past fuzz campaign — a minimal scenario that once violated a runtime
invariant.  Replaying them under the checker pins the corresponding
fixes:

- ``draining-target-*``: balance/reserve/separate plans raced the
  scale-in decision and migrated actors onto the draining victim
  (fixed in GEM ``_process`` reconciliation, planning's ``draining``
  exclusion, and the LEM's execute-time destination recheck).
- ``lem-round-memory-race*``: the LEM round debug snapshot read live
  booked memory after the GEM-reply wait, racing migrations that landed
  during the wait (fixed by capturing memory at snapshot time).
- ``actor-cpu-overcount``: per-actor CPU% was not clamped at the
  bucketed-meter window edge, unlike ``Server.cpu_percent`` (fixed in
  the profiling collector).
- ``migration-onto-minority-side``: a lossy cut opening right after
  GEM planning let a majority-side LEM migrate an actor onto the
  minority side (fixed by the execute-time destination quorum recheck).
- ``overloaded-nack-summed-by-driver``: with overload protection on, a
  raw client call can resolve to an ``Overloaded`` NACK; the pagerank
  BSP driver summed the NACK as if it were a dangling-mass float and
  crashed (fixed by treating shed/rejected replies as lost
  contributions — found by the ``overload`` fuzz profile on its first
  campaign).
- ``adopter-cross-group-flagged``: when a group lost its only leaf GEM
  and was adopted by a surviving leaf, the adopter's plans pooled home
  and adopted servers, so a legitimate availability move crossed the
  group boundary and tripped ``cross-group-single-authority`` (fixed
  by extending the checker's leaves-all-failed escape hatch to either
  endpoint group — found by the ``scale-chaos`` profile on its first
  campaign).
- ``silent-abort-target-crash-while-draining``: when the migration
  target crashed while the protocol was still draining the actor's
  in-flight handler, the early exit reset ``migrating`` without
  notifying hooks — the checker (and durability's journal) saw a
  migration that never aborted, tripping ``single-flight`` on the
  retry (fixed by routing that exit through ``_rollback``;
  durability's serialize CPU stretched handler runtimes enough to
  expose the window).

New shrunk artifacts land here via
``python -m repro.cli fuzz --seeds N --out tests/fuzz/corpus``
(rename the ``seed-*.json`` file after the bug it demonstrates).
"""

import glob
import os

import pytest

from repro.cli import load_fuzz_scenario
from repro.fuzz import run_scenario

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS, f"no corpus artifacts in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p)[:-5] for p in CORPUS])
def test_corpus_scenario_runs_clean(path):
    scenario = load_fuzz_scenario(path)
    result = run_scenario(scenario)
    assert result.error is None, result.error
    assert not result.violations, "\n".join(
        str(v) for v in result.violations)
    assert result.checks_run > 0, "checker never ran a check"
