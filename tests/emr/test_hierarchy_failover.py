"""Hierarchical control-plane failover under directed chaos.

The differential harness (``test_control_plane_differential.py``) proves
the GEM tree decides nothing *extra* in calm weather; this suite proves
it survives foul weather:

- **Root failover mid-migration** — the root dies at the exact moment
  one of its cross-group migrations starts.  The two-phase protocol
  must drive the orphaned migration to commit or rollback (no actor
  stays ``migrating``), a deterministic leaf must be promoted, and the
  promoted incarnation must rebuild a consistent per-group view — from
  full re-published aggregates — within two report periods.
- **Leaf failover with group adoption** — a group that loses its only
  leaf is *adopted* by a surviving foreign leaf: LEM reports route to
  the adopter, the adopter publishes the group's aggregates (full
  first, by the baseline reset), and a recovered home leaf reclaims the
  group.
- **Groupless emergency respawn** — when every leaf is dead the manager
  respawns a groupless GEM that serves the whole fleet through the
  ``pick_gem`` fallback but never publishes a group aggregate.

Every run keeps the invariant checker attached, so the failover trio
(``root-single-authority``, ``aggregate-resync-after-failover``,
``no-stranded-cross-group-migration``) polices each scenario.
"""

from repro.actors import Actor, Client
from repro.apps.estore import Partition, build_estore
from repro.bench import build_cluster
from repro.check import InvariantChecker
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.fuzz.runner import _reset_id_counters
from repro.sim import Timeout, spawn

#: Exercises the full aggregate/root-round pipeline without letting
#: either tier's planner decide anything (same rule as the differential
#: harness uses for its quiet-policy runs).
UNREACHABLE_RESERVE = """
server.cpu.perc > 99 and
client.call(Partition(p1).read).perc > 99 => reserve(p1, cpu);
"""

PERIOD_MS = 5_000.0


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def _run_packed(*, seed, servers, group_size, duration_ms, clients=12,
                on_event=None, suspicion_ms=None):
    """Deterministic packed-estore run on the hierarchical plane: every
    actor starts in group 0 with a low cross-group band, so the root
    tier must issue cross-group moves (the seed-41 shape the
    differential harness pins).  Returns events, manager, bed, checker.
    """
    _reset_id_counters()
    bed = build_cluster(servers, "m1.small", seed=seed)
    setup = build_estore(bed, num_roots=8, children_per_root=2,
                         num_home_servers=1)
    policy = compile_source(UNREACHABLE_RESERVE, [Partition])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=PERIOD_MS, gem_wait_ms=300.0, lem_stagger_ms=10.0,
        control_plane="hierarchical", server_group_size=group_size,
        cross_group_band=10.0, suspicion_timeout_ms=suspicion_ms))
    checker = InvariantChecker(manager)
    checker.attach()
    events = []

    def listen(kind, detail):
        events.append((bed.sim.now, kind, dict(detail)))
        if on_event is not None:
            on_event(kind, detail, manager)

    manager.add_listener(listen)
    manager.start()

    client_list = [Client(bed.system, name=f"c{i}")
                   for i in range(clients)]
    rng = bed.streams.stream("failover-key-pick")

    def loop(client):
        while bed.sim.now < duration_ms:
            root = setup.picker.pick()
            yield from client.timed_call(root, "read",
                                         rng.randrange(10_000))
            yield Timeout(bed.sim, 10.0)

    for client in client_list:
        spawn(bed.sim, loop(client))
    bed.run(until_ms=duration_ms + 10_000.0)
    checker.final_check()
    return events, manager, bed, checker


def _events_of(events, kind):
    return [(time, detail) for time, k, detail in events if k == kind]


# ---------------------------------------------------------------------------
# Root failover mid-cross-group-migration (the acceptance scenario)
# ---------------------------------------------------------------------------

def test_kill_root_mid_cross_group_migration_commits_or_rolls_back():
    killed = []

    def kill_on_first_root_move(kind, detail, manager):
        if (kind == "migration-started" and detail.get("issuer") == "root"
                and not killed):
            killed.append(manager.system.sim.now)
            manager.hierarchy.root.fail()

    events, manager, bed, checker = _run_packed(
        seed=41, servers=4, group_size=2, duration_ms=40_000.0,
        on_event=kill_on_first_root_move)
    assert killed, "scenario produced no root-issued migration to orphan"
    assert not checker.violations, checker.report()

    # Commit-or-rollback: nothing is left mid-flight.  The invariant
    # checker enforces the timed bound during the run; at the end the
    # directory must hold no migrating record at all.
    for record in bed.system.directory.records():
        assert not record.migrating, f"{record.ref} stranded migrating"

    # A deterministic leaf was promoted exactly once for this failure.
    failovers = _events_of(events, "root-failover")
    assert len(failovers) == 1
    time_promoted, detail = failovers[0]
    assert detail["generation"] == 1
    assert detail["respawned"] is False
    assert detail["promoted_leaf"] == 0      # lowest-id alive leaf
    assert manager.hierarchy.root.generation == 1

    # The promoted incarnation is consistent — it held a round over
    # rebuilt (full-republished) views — within two report periods of
    # the kill.
    rounds = [(time, detail) for time, detail
              in _events_of(events, "root-round")
              if detail.get("generation") == 1]
    assert rounds, "promoted root never held a round"
    first_round_at, first_round = rounds[0]
    assert first_round_at - killed[0] <= 2 * PERIOD_MS
    assert len(first_round["groups"]) == 2   # full fleet view rebuilt

    # The rebuild came from full aggregates: the first publish of every
    # group after the promotion shipped every field.
    full = [detail for time, detail in _events_of(events, "gem-aggregate")
            if time >= time_promoted]
    groups_seen = set()
    for detail in full:
        if detail["group"] in groups_seen:
            continue
        groups_seen.add(detail["group"])
        assert len(detail["delta_fields"]) == 14, (
            f"group {detail['group']}'s first post-promotion aggregate "
            f"was a delta: {detail['delta_fields']}")


def test_root_failover_counter_reaches_run_summary():
    """The manager counts promotions; the fuzz result carries them (the
    CLI sums these into the campaign summary)."""
    from repro.fuzz import generate_scenario, run_scenario
    scenario = generate_scenario(4, profile="scale-chaos")
    assert any(f["fault"] == "kill-gem" for f in scenario.faults)
    result = run_scenario(scenario)
    assert result.ok, result.summary()
    assert result.leaf_failovers >= 0
    assert result.root_failovers >= 0


# ---------------------------------------------------------------------------
# Leaf failover: group adoption and release
# ---------------------------------------------------------------------------

def _small_tree(servers=4, group_size=2, suspicion_ms=6_000.0):
    _reset_id_counters()
    bed = build_cluster(servers, seed=13)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=PERIOD_MS, gem_wait_ms=300.0,
        control_plane="hierarchical", server_group_size=group_size,
        suspicion_timeout_ms=suspicion_ms))
    checker = InvariantChecker(manager)
    checker.attach()
    events = []
    manager.add_listener(
        lambda kind, detail: events.append((bed.sim.now, kind,
                                            dict(detail))))
    manager.start()
    return bed, manager, checker, events


def test_group_adoption_and_release_round_trip():
    bed, manager, checker, events = _small_tree()
    hierarchy = manager.hierarchy
    victim = manager.gems[1]            # group 1's only leaf
    assert hierarchy.leaf_group[victim.gem_id] == 1
    group1_server = next(
        s for s in bed.system.provisioner.servers
        if hierarchy.groups.group_of(s.server_id) == 1)

    victim.fail()
    bed.run(until_ms=8_000.0)           # detector tick + a full period

    adopted = _events_of(events, "group-adopted")
    assert adopted and adopted[0][1] == {
        "group": 1, "adopter": 0, "home_leaves": (1,)}
    assert manager.leaf_failovers == 1
    # LEM reports from the orphan group route to the adopter...
    assert manager.pick_gem(group1_server) is manager.gems[0]
    # ...which publishes the group's aggregate (full first — baseline
    # was reset on adoption; the attached checker enforces this too).
    foreign = [detail for time, detail
               in _events_of(events, "gem-aggregate")
               if detail["group"] == 1 and detail["gem_id"] == 0]
    assert foreign, "adopter never published the adopted group"
    assert len(foreign[0]["delta_fields"]) == 14

    victim.recover()
    bed.run(until_ms=16_000.0)

    released = _events_of(events, "group-adoption-released")
    assert released and released[0][1] == {
        "group": 1, "adopter": 0, "leaf": 1}
    assert hierarchy.adopter_for(1) is None
    assert manager.pick_gem(group1_server) is victim
    # The reclaiming home leaf also starts from a full publish.
    reclaimed = [detail for time, detail
                 in _events_of(events, "gem-aggregate")
                 if detail["group"] == 1 and detail["gem_id"] == 1
                 and time > released[0][0]]
    assert reclaimed and len(reclaimed[0]["delta_fields"]) == 14
    assert not checker.violations, checker.report()


def test_dead_adopter_group_readopted_by_next_survivor():
    bed, manager, checker, events = _small_tree(servers=6, group_size=2)
    hierarchy = manager.hierarchy
    assert len(manager.gems) == 3
    manager.gems[1].fail()              # orphan group 1
    bed.run(until_ms=8_000.0)
    assert hierarchy._adopted == {1: 0}
    manager.gems[0].fail()              # the adopter dies too
    bed.run(until_ms=16_000.0)
    # Group 1 was re-adopted by the remaining leaf; group 0 (home of
    # the dead gem 0) was adopted as well.
    assert hierarchy._adopted == {0: 2, 1: 2}
    assert not checker.violations, checker.report()


# ---------------------------------------------------------------------------
# Groupless emergency respawn (pick_gem fallback, publish early-return)
# ---------------------------------------------------------------------------

def test_all_leaves_dead_falls_back_to_groupless_respawn():
    bed, manager, checker, events = _small_tree()
    hierarchy = manager.hierarchy
    for gem in list(manager.gems):
        gem.fail()
    bed.run(until_ms=8_000.0)

    # No adoption was possible (no alive foreign leaf); instead a
    # groupless replacement GEM was respawned.
    assert not _events_of(events, "group-adopted")
    respawned = [gem for gem in manager.gems if not gem.failed]
    assert len(respawned) == 1
    spare = respawned[0]
    assert hierarchy.leaf_group.get(spare.gem_id) is None

    # Every group's LEMs reach it through the pick_gem fallback.
    for server in bed.system.provisioner.servers:
        assert manager.pick_gem(server) is spare

    # And it never publishes a group aggregate — a "group" aggregate
    # from a GEM that may have heard from several groups at once would
    # be meaningless.
    before = len(_events_of(events, "gem-aggregate"))
    hierarchy.publish(spare, [], {})
    assert len(_events_of(events, "gem-aggregate")) == before
    assert not checker.violations, checker.report()


def test_delta_baseline_pruned_on_group_dissolution():
    """When a group's last running member is gone, its delta baseline,
    folded root view, and adoption entry are all dropped — a stale cold
    view would attract cross-group migrations onto dead servers, and a
    stale baseline would corrupt the next delta."""
    bed, manager, checker, events = _small_tree()
    hierarchy = manager.hierarchy
    bed.run(until_ms=7_000.0)           # at least one publish cycle
    assert 1 in hierarchy._last_published
    group1 = [s for s in bed.system.provisioner.servers
              if hierarchy.groups.group_of(s.server_id) == 1]
    for server in group1:
        bed.system.crash_server(server)
    assert 1 not in hierarchy._last_published
    assert 1 not in hierarchy.root.views
    assert 1 not in hierarchy._adopted
    # Group 0's stream is untouched.
    assert 0 in hierarchy._last_published
