"""Tests for EmrConfig validation."""

import pytest

from repro.core import EmrConfig


def test_defaults_are_valid():
    config = EmrConfig()
    assert config.period_ms == 60_000.0
    assert config.stability_window_ms() == config.period_ms


@pytest.mark.parametrize("kwargs", [
    {"period_ms": 0.0},
    {"period_ms": -5.0},
    {"gem_count": 0},
    {"stability_ms": -1.0},
    {"gem_wait_ms": -1.0},
    {"gem_reply_timeout_ms": 0.0},
    {"gem_wait_ms": 5_000.0, "gem_reply_timeout_ms": 4_000.0},
    {"max_moves_per_server": 0},
    {"admission_upper": 0.0},
    {"admission_upper": 150.0},
    {"min_servers": -1},
    {"max_scale_out_per_period": 0},
    {"lem_stagger_ms": -1.0},
    {"control_latency_ms": -0.5},
    {"profiling_overhead_cpu_ms": -0.01},
    {"suspicion_timeout_ms": 0.0},
    {"suspicion_timeout_ms": 60_000.0},          # == period: always suspect
    {"period_ms": 5_000.0, "suspicion_timeout_ms": 4_000.0},
    {"client_timeout_ms": 0.0},
    {"client_timeout_ms": -10.0},
    {"client_max_retries": -1},
    {"client_backoff_base_ms": 0.0},
    {"client_backoff_base_ms": 500.0, "client_backoff_cap_ms": 100.0},
])
def test_invalid_configurations_rejected(kwargs):
    with pytest.raises(ValueError):
        EmrConfig(**kwargs)


def test_failure_detection_knobs_accepted():
    config = EmrConfig(period_ms=5_000.0, suspicion_timeout_ms=6_000.0,
                       resurrect_lost_actors=False,
                       client_timeout_ms=2_000.0, client_max_retries=5,
                       client_backoff_base_ms=50.0,
                       client_backoff_cap_ms=1_000.0)
    assert config.suspicion_timeout_ms == 6_000.0
    assert config.resurrect_lost_actors is False


def test_detection_disabled_by_default():
    assert EmrConfig().suspicion_timeout_ms is None


def test_explicit_stability_zero_allowed():
    # Zero stability means "no window" — used by the ablation.
    config = EmrConfig(stability_ms=0.0)
    assert config.stability_window_ms() == 0.0
