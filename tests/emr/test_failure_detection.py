"""EMR failure detection: suspicion, resurrection, LEM and GEM failover."""

from repro.actors import Actor, RuntimeHooks
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def balance_policy():
    return compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])


def make_manager(bed, **overrides):
    defaults = dict(period_ms=2_000.0, gem_wait_ms=300.0,
                    lem_stagger_ms=10.0, suspicion_timeout_ms=2_500.0)
    defaults.update(overrides)
    manager = ElasticityManager(bed.system, balance_policy(),
                                EmrConfig(**defaults))
    manager.start()
    return manager


def test_crash_cancels_lem_and_unregisters_it():
    bed = build_cluster(2)
    manager = make_manager(bed)
    victim = bed.servers[0]
    lem = manager.lems[victim.server_id]
    bed.run(until_ms=100.0)
    bed.system.crash_server(victim)
    assert victim.server_id not in manager.lems
    assert lem._process is not None
    bed.run(until_ms=10_000.0)
    # The cancelled timer never ran another round on the dead server.
    assert lem.rounds_run == 0
    assert lem._process.finished


def test_suspicion_fires_after_silence_and_resurrects_actors():
    bed = build_cluster(3)
    manager = make_manager(bed)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    refs = [bed.system.create_actor(Spinner, server=bed.servers[0])
            for _ in range(4)]
    bed.run(until_ms=3_000.0)       # at least one LEM round has happened
    crash_at = bed.sim.now
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=crash_at + 2 * 2_500.0 + 100.0)
    suspected = [d for kind, d in events if kind == "server-suspected"]
    assert len(suspected) == 1
    assert suspected[0]["lost_actors"] == 4
    # Every lost actor lives again, same ref, on a surviving server.
    for ref in refs:
        record = bed.system.directory.try_lookup(ref.actor_id)
        assert record is not None
        assert record.server in (bed.servers[1], bed.servers[2])
        assert record.server.running


def test_resurrection_can_be_disabled():
    bed = build_cluster(2)
    manager = make_manager(bed, resurrect_lost_actors=False)
    ref = bed.system.create_actor(Spinner, server=bed.servers[0])
    bed.run(until_ms=100.0)
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=10_000.0)
    assert bed.system.directory.try_lookup(ref.actor_id) is None


def test_no_detection_without_suspicion_timeout():
    bed = build_cluster(2)
    manager = make_manager(bed, suspicion_timeout_ms=None)
    events = []
    manager.add_listener(lambda kind, detail: events.append(kind))
    ref = bed.system.create_actor(Spinner, server=bed.servers[0])
    bed.run(until_ms=100.0)
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=20_000.0)
    assert "server-suspected" not in events
    assert bed.system.directory.try_lookup(ref.actor_id) is None


def test_healthy_servers_are_never_suspected():
    bed = build_cluster(3)
    manager = make_manager(bed)
    events = []
    manager.add_listener(lambda kind, detail: events.append(kind))
    bed.run(until_ms=30_000.0)
    assert "server-suspected" not in events


def test_resurrection_emits_hook_and_resets_profile():
    bed = build_cluster(2)
    manager = make_manager(bed)
    resurrected = []

    class Watch(RuntimeHooks):
        def on_actor_resurrected(self, record):
            resurrected.append(record)

    bed.system.add_hooks(Watch())
    ref = bed.system.create_actor(Spinner, server=bed.servers[0])
    bed.run(until_ms=2_100.0)
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=12_000.0)
    assert [r.ref for r in resurrected] == [ref]
    # Fresh profiling stats were installed for the resurrected actor.
    assert ref.actor_id in manager.profiler._stats


def test_gem_failover_adoption_by_survivor():
    bed = build_cluster(2)
    manager = make_manager(bed, gem_count=2)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    bed.run(until_ms=100.0)
    manager.gems[0].fail()
    bed.run(until_ms=5_000.0)
    failovers = [d for kind, d in events if kind == "gem-failover"]
    assert failovers == [{"failed_gem": 0, "adopter": 1,
                          "respawned": False}]
    # A recovered GEM can fail again later and is re-noted.
    manager.gems[0].recover()
    bed.run(until_ms=7_000.0)
    manager.gems[0].fail()
    bed.run(until_ms=12_000.0)
    failovers = [d for kind, d in events if kind == "gem-failover"]
    assert len(failovers) == 2


def test_gem_respawn_when_none_survive():
    bed = build_cluster(2)
    manager = make_manager(bed, gem_count=1)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    bed.run(until_ms=100.0)
    manager.gems[0].fail()
    bed.run(until_ms=5_000.0)
    failovers = [d for kind, d in events if kind == "gem-failover"]
    assert failovers == [{"failed_gem": 0, "adopter": 1, "respawned": True}]
    assert len(manager.gems) == 2
    assert not manager.gems[1].failed
    # LEM reports now route to the respawned GEM.
    assert manager.pick_gem() is manager.gems[1]


def test_scale_in_retirement_is_not_suspected():
    # A deliberately retired server must not produce a suspicion event.
    bed = build_cluster(2)
    manager = make_manager(bed)
    events = []
    manager.add_listener(lambda kind, detail: events.append(kind))
    server = bed.servers[1]
    manager.mark_draining(server)
    manager._maybe_retire()
    assert not server.running
    bed.run(until_ms=15_000.0)
    assert "server-suspected" not in events
