"""Partition tolerance in the control plane: epoch fencing, quorum-loss
degraded mode, the crashed-vs-unreachable distinction, and heal-time
anti-entropy.

Fabric-level partition mechanics are covered in tests/cluster; the
chaos-engine plumbing in tests/chaos.  These tests drive the manager's
partition surface directly so each protocol rule is pinned in
isolation.
"""

from repro.actors import Actor, RuntimeHooks
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def balance_policy():
    return compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])


def make_manager(bed, **overrides):
    defaults = dict(period_ms=2_000.0, gem_wait_ms=300.0,
                    lem_stagger_ms=10.0, suspicion_timeout_ms=2_500.0)
    defaults.update(overrides)
    manager = ElasticityManager(bed.system, balance_policy(),
                                EmrConfig(**defaults))
    manager.start()
    return manager


def cut(bed, manager, servers, gems=(), symmetric=True):
    """Partition ``servers`` (+ the named GEMs) off, fabric + manager."""
    ids = frozenset(s.server_id for s in servers)
    token = bed.system.fabric.partition(ids, symmetric=symmetric)
    manager.note_partition(token, ids, frozenset(gems), symmetric)
    return token


def heal(bed, manager, token):
    bed.system.fabric.heal_partition(token)
    manager.note_partition_healed(token)


# -- epochs ------------------------------------------------------------


def test_inject_bumps_epoch_on_majority_side_only():
    bed = build_cluster(3)
    manager = make_manager(bed, gem_count=2)
    minority = bed.servers[0]
    token = cut(bed, manager, [minority], gems=(0,))
    assert manager.epoch == 1
    # Majority side learns the new epoch; the minority cannot.
    assert manager.gems[0].epoch == 0
    assert manager.gems[1].epoch == 1
    assert manager.lems[minority.server_id].epoch == 0
    for server in bed.servers[1:]:
        assert manager.lems[server.server_id].epoch == 1
    heal(bed, manager, token)
    # Heal syncs everyone: highest epoch wins, nobody stays fenced out.
    assert manager.epoch == 2
    assert all(gem.epoch == 2 for gem in manager.gems)
    assert all(lem.epoch == 2 for lem in manager.lems.values())


def test_lem_rejects_stale_epoch_reply():
    bed = build_cluster(2)
    manager = make_manager(bed)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    lem = manager.lems[bed.servers[0].server_id]
    # The LEM has seen a newer configuration than the GEM will stamp.
    lem.epoch = 3
    bed.run(until_ms=5_000.0)
    assert lem.stale_replies_rejected >= 1
    rejections = [d for kind, d in events if kind == "stale-epoch-rejected"]
    assert rejections
    assert rejections[0]["lem_epoch"] == 3
    assert rejections[0]["gem_epoch"] == 0
    # A rejected reply never moves the LEM's own epoch backwards.
    assert lem.epoch == 3


# -- quorum-loss degraded mode -----------------------------------------


def test_minority_gem_enters_degraded_mode_and_is_vetoed():
    bed = build_cluster(3)
    manager = make_manager(bed, gem_count=2)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    manager.debug_events = True
    token = cut(bed, manager, [bed.servers[0]], gems=(0,))
    gem0, gem1 = manager.gems
    assert gem0.degraded          # sees 1 of 3 servers: no quorum
    assert not gem1.degraded      # sees 2 of 3: majority
    assert [d["gem_id"] for kind, d in events
            if kind == "gem-degraded"] == [0]
    # Defence in depth: the vote layer vetoes the degraded requester.
    assert manager.vote(gem0, "overloaded") is False
    vetoes = [d for kind, d in events
              if kind == "gem-vote" and d.get("vetoed")]
    assert vetoes and vetoes[0]["vetoed"] == "degraded"
    heal(bed, manager, token)
    assert not gem0.degraded
    assert [d["gem_id"] for kind, d in events
            if kind == "gem-restored"] == [0]


def test_stale_epoch_requester_is_vetoed():
    bed = build_cluster(3)
    manager = make_manager(bed, gem_count=2)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    manager.debug_events = True
    manager.epoch = 2  # the fleet moved on; gem 1 never heard
    assert manager.vote(manager.gems[1], "overloaded") is False
    vetoes = [d for kind, d in events
              if kind == "gem-vote" and d.get("vetoed")]
    assert vetoes and vetoes[0]["vetoed"] == "stale-epoch"


def test_unreachable_peer_counts_against_vote_majority():
    bed = build_cluster(3)
    manager = make_manager(bed, gem_count=3)
    manager.debug_events = True
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    # GEMs 1 and 2 sit behind the cut; requester 0 keeps the majority
    # side but has lost both peers: silent peers are not agreement.
    cut(bed, manager, bed.servers[:1], gems=(1, 2))
    assert manager.vote(manager.gems[0], "overloaded") is False
    votes = [d for kind, d in events if kind == "gem-vote"]
    assert votes[-1]["decision"] is False
    assert all(len(view) == 4 and view[3] is False
               for view in votes[-1]["peer_views"])


def test_quorum_probe_flips_majority_when_fleet_changes():
    bed = build_cluster(4)
    manager = make_manager(bed, gem_count=2)
    # Group of 2 vs rest of 2: a tie, so the group starts quorum-less.
    token = cut(bed, manager, bed.servers[:2], gems=(0,))
    assert manager.server_quorumless(bed.servers[0])
    assert not manager.server_quorumless(bed.servers[2])
    # Both majority-side servers die: the group now holds the majority.
    bed.system.crash_server(bed.servers[2])
    bed.system.crash_server(bed.servers[3])
    bed.run(until_ms=3_000.0)  # let the probe re-evaluate
    assert not manager.server_quorumless(bed.servers[0])
    heal(bed, manager, token)
    assert not manager.server_quorumless(bed.servers[0])


def test_placement_avoids_quorumless_servers():
    bed = build_cluster(3)
    manager = make_manager(bed)
    cut(bed, manager, [bed.servers[0]])
    chosen = manager.least_loaded_server()
    assert chosen is not bed.servers[0]


# -- crashed vs unreachable --------------------------------------------


def test_unreachable_server_is_not_resurrected_elsewhere():
    bed = build_cluster(3)
    manager = make_manager(bed)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    refs = [bed.system.create_actor(Spinner, server=bed.servers[0])
            for _ in range(3)]
    bed.run(until_ms=3_000.0)  # heartbeats flowing
    token = cut(bed, manager, [bed.servers[0]])
    bed.run(until_ms=bed.sim.now + 3 * 2_500.0)
    kinds = [kind for kind, _ in events]
    assert "server-unreachable" in kinds
    assert "server-suspected" not in kinds
    # The actors stayed exactly where they were: one copy, far side.
    for ref in refs:
        record = bed.system.directory.lookup(ref.actor_id)
        assert record.server is bed.servers[0]
    # After heal the server is re-admitted, not suspected.
    heal(bed, manager, token)
    bed.run(until_ms=bed.sim.now + 3 * 2_500.0)
    kinds = [kind for kind, _ in events]
    assert "server-readmitted" in kinds
    assert "server-suspected" not in kinds


def test_crash_behind_partition_resurrects_after_heal():
    bed = build_cluster(3)
    manager = make_manager(bed)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    resurrected = []

    class Watch(RuntimeHooks):
        def on_actor_resurrected(self, record):
            resurrected.append(record.ref)

    bed.system.add_hooks(Watch())
    refs = [bed.system.create_actor(Spinner, server=bed.servers[0])
            for _ in range(2)]
    bed.run(until_ms=3_000.0)
    token = cut(bed, manager, [bed.servers[0]])
    bed.system.crash_server(bed.servers[0])
    bed.run(until_ms=bed.sim.now + 3 * 2_500.0)
    # Crashed and unreachable are indistinguishable mid-partition, so
    # nothing is resurrected yet — a double placement would be worse.
    assert resurrected == []
    heal(bed, manager, token)
    # Anti-entropy confirms the crash and runs the deferred suspicion.
    assert sorted(r.actor_id for r in resurrected) == \
        sorted(r.actor_id for r in refs)
    suspected = [d for kind, d in events if kind == "server-suspected"]
    assert len(suspected) == 1
    for ref in refs:
        record = bed.system.directory.lookup(ref.actor_id)
        assert record.server.running
        assert record.server is not bed.servers[0]


def test_partition_healed_event_reports_reconciliation():
    bed = build_cluster(3)
    manager = make_manager(bed)
    events = []
    manager.add_listener(lambda kind, detail: events.append((kind, detail)))
    bed.system.create_actor(Spinner, server=bed.servers[0])
    bed.system.create_actor(Spinner, server=bed.servers[1])
    token = cut(bed, manager, [bed.servers[0]])
    heal(bed, manager, token)
    [healed] = [d for kind, d in events if kind == "partition-healed"]
    assert healed["epoch"] == 2
    assert healed["actors_minority_side"] == 1
    assert healed["actors_total"] == 2
    # Both records were placed at epoch 0 < 2: stale by the heal's view.
    assert healed["stale_view_records"] == 2


def test_migration_commit_stamps_current_epoch():
    bed = build_cluster(2)
    manager = make_manager(bed)
    ref = bed.system.create_actor(Spinner, server=bed.servers[0])
    manager.epoch = 4
    done = bed.system.migrate_actor(ref, bed.servers[1])
    bed.run(until_ms=1_000.0)
    assert done.value is True
    assert bed.system.directory.lookup(ref.actor_id).placement_epoch == 4
