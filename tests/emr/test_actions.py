"""Unit tests for migration actions and conflict resolution."""

from repro.actors import ActorRef
from repro.cluster import Server, instance_type
from repro.core.emr import Action, resolve_actions
from repro.core.profiling import ActorSnapshot
from repro.sim import Simulator


def snap(actor_id, server):
    return ActorSnapshot(
        ref=ActorRef(actor_id=actor_id, type_name="W"), server=server,
        cpu_perc=10.0, cpu_ms_per_min=100.0, mem_mb=1.0, mem_perc=0.1,
        net_bytes_per_min=0.0, net_perc=0.0)


def make_servers():
    sim = Simulator()
    return [Server(sim, instance_type("m5.large"), name=n)
            for n in ("a", "b", "c")]


def action(kind, actor_id, src, dst):
    return Action(kind=kind, actor=snap(actor_id, src), src=src, dst=dst)


def test_priorities_match_table():
    a, b, _ = make_servers()
    assert action("balance", 1, a, b).priority > \
        action("reserve", 1, a, b).priority > \
        action("separate", 1, a, b).priority > \
        action("colocate", 1, a, b).priority


def test_resolve_keeps_highest_priority_per_actor():
    a, b, c = make_servers()
    lem = [action("colocate", 1, a, b)]
    gem = [action("balance", 1, a, c)]
    final = resolve_actions(lem, gem)
    assert len(final) == 1
    assert final[0].kind == "balance"
    assert final[0].dst is c


def test_resolve_keeps_earliest_on_tie():
    a, b, c = make_servers()
    first = action("colocate", 1, a, b)
    second = action("colocate", 1, a, c)
    final = resolve_actions([first], [second])
    assert final == [first]


def test_resolve_preserves_order_and_distinct_actors():
    a, b, c = make_servers()
    lem = [action("colocate", 1, a, b), action("separate", 2, a, c)]
    gem = [action("reserve", 3, b, c)]
    final = resolve_actions(lem, gem)
    assert [act.actor_id for act in final] == [1, 2, 3]


def test_resolve_empty():
    assert resolve_actions([], []) == []
