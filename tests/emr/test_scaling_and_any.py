"""Fleet scaling detail and the `any` actor type end to end."""

import pytest

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


class Alpha(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


class Beta(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


CONFIG = dict(period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0)


def drive(bed, refs, cpu_ms, until_ms):
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < until_ms:
            yield client.call(ref, "spin", cpu_ms)

    for ref in refs:
        spawn(bed.sim, loop(ref))


def test_any_type_balance_moves_all_kinds():
    bed = build_cluster(2)
    src = bed.servers[0]
    refs = ([bed.system.create_actor(Alpha, server=src) for _ in range(3)]
            + [bed.system.create_actor(Beta, server=src)
               for _ in range(3)])
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({any}, cpu);", [Alpha, Beta])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    drive(bed, refs, 40.0, 40_000.0)
    bed.run(until_ms=40_000.0)
    assert manager.migrations_total() >= 1
    moved_types = {event.actor.type_name
                   for event in manager.migration_log}
    homes = {bed.system.server_of(ref).server_id for ref in refs}
    assert len(homes) == 2
    # `any` makes both types eligible; at least one of each may move,
    # but nothing restricts the balancer to a single type.
    assert moved_types <= {"Alpha", "Beta"}


def test_scale_out_respects_fleet_cap():
    bed = build_cluster(1, boot_delay_ms=1_000.0, max_servers=2)
    refs = [bed.system.create_actor(Alpha, server=bed.servers[0])
            for _ in range(8)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Alpha}, cpu);", [Alpha])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        allow_scale_out=True, max_scale_out_per_period=4, **CONFIG))
    manager.start()
    drive(bed, refs, 60.0, 60_000.0)
    bed.run(until_ms=60_000.0)
    assert bed.provisioner.fleet_size() == 2  # capped despite demand


def test_scale_in_respects_min_servers():
    bed = build_cluster(3)
    bed.system.create_actor(Alpha, server=bed.servers[0])
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Alpha}, cpu);", [Alpha])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        allow_scale_in=True, min_servers=2, **CONFIG))
    manager.start()
    bed.run(until_ms=60_000.0)  # idle fleet: scale-in pressure
    assert bed.provisioner.fleet_size() >= 2


def test_migration_events_carry_rule_line():
    bed = build_cluster(2)
    refs = [bed.system.create_actor(Alpha, server=bed.servers[0])
            for _ in range(6)]
    policy_source = ("# a comment line\n"
                     "server.cpu.perc > 80 or server.cpu.perc < 60 "
                     "=> balance({Alpha}, cpu);")
    policy = compile_source(policy_source, [Alpha])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    drive(bed, refs, 40.0, 30_000.0)
    bed.run(until_ms=30_000.0)
    assert manager.migration_log
    assert all(event.rule_line == 2 for event in manager.migration_log)


def test_gem_vote_rejects_without_peer_agreement():
    bed = build_cluster(2)
    policy = compile_source(
        "server.cpu.perc > 80 => balance({Alpha}, cpu);", [Alpha])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        gem_count=3, **CONFIG))
    manager.start()
    requester = manager.gems[0]
    # Peers that have processed rounds and see no overload: vote fails.
    for peer in manager.gems[1:]:
        peer.rounds_processed = 1
        peer.overload_fraction = 0.0
    assert not manager.vote(requester, "overloaded")
    # Peers that corroborate: vote passes.
    for peer in manager.gems[1:]:
        peer.overload_fraction = 1.0
    assert manager.vote(requester, "overloaded")


def test_single_gem_vote_always_passes():
    bed = build_cluster(1)
    policy = compile_source(
        "server.cpu.perc > 80 => balance({Alpha}, cpu);", [Alpha])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    assert manager.vote(manager.gems[0], "overloaded")
    assert manager.vote(manager.gems[0], "underloaded")
