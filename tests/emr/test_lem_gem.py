"""Integration tests: LEM/GEM rounds drive real migrations."""

import pytest

from repro.actors import Actor, ActorSystem, Client
from repro.cluster import Provisioner
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import Simulator, Timeout, spawn


class Spinner(Actor):
    """CPU-hungry actor driven by an internal client loop."""

    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


class Hub(Actor):
    spokes: list

    def __init__(self):
        self.spokes = []

    def ping(self):
        yield self.compute(0.2)
        return len(self.spokes)


class Spoke(Actor):
    def pong(self):
        yield self.compute(0.2)
        return True


def build(servers=2, itype="m5.large", **prov_kwargs):
    sim = Simulator()
    prov = Provisioner(sim, default_type=itype, **prov_kwargs)
    for _ in range(servers):
        prov.boot_server(immediate=True)
    sim.run()
    return sim, ActorSystem(sim, prov)


def drive_load(system, refs, cpu_ms, until_ms):
    client = Client(system)

    def loop(ref):
        while system.sim.now < until_ms:
            yield client.call(ref, "spin", cpu_ms)

    for ref in refs:
        spawn(system.sim, loop(ref))


CONFIG = dict(period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0)


def test_balance_rule_spreads_overloaded_server():
    sim, system = build(2)
    src = system.provisioner.servers[0]
    refs = [system.create_actor(Spinner, server=src) for _ in range(6)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    drive_load(system, refs, cpu_ms=40.0, until_ms=60_000.0)
    sim.run(until=60_000.0)
    homes = {system.server_of(ref).server_id for ref in refs}
    assert len(homes) == 2
    assert manager.migrations_total() >= 1


def test_no_rules_means_no_migrations():
    sim, system = build(2)
    src = system.provisioner.servers[0]
    refs = [system.create_actor(Spinner, server=src) for _ in range(6)]
    policy = compile_source("", [Spinner])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    drive_load(system, refs, cpu_ms=40.0, until_ms=30_000.0)
    sim.run(until=30_000.0)
    assert manager.migrations_total() == 0


def test_colocate_rule_brings_spokes_to_hub():
    sim, system = build(2)
    a, b = system.provisioner.servers
    hub = system.create_actor(Hub, server=a)
    spokes = [system.create_actor(Spoke, server=b) for _ in range(3)]
    system.actor_instance(hub).spokes.extend(spokes)
    policy = compile_source(
        "Spoke(s) in ref(Hub(h).spokes) => pin(h); colocate(s, h);",
        [Hub, Spoke])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    sim.run(until=20_000.0)
    assert all(system.server_of(s) is a for s in spokes)
    assert system.directory.lookup(hub.actor_id).pinned


def test_separate_rule_spreads_same_server_pair():
    sim, system = build(3)
    a = system.provisioner.servers[0]
    hub = system.create_actor(Hub, server=a)
    spoke = system.create_actor(Spoke, server=a)
    system.actor_instance(hub).spokes.append(spoke)
    policy = compile_source(
        "Spoke(s) in ref(Hub(h).spokes) => separate(h, s);", [Hub, Spoke])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    sim.run(until=20_000.0)
    assert system.server_of(hub) is not system.server_of(spoke)


def test_reserve_with_companion_colocate_moves_group():
    sim, system = build(2, itype="m1.small")
    src, extra = system.provisioner.servers
    hub = system.create_actor(Hub, server=src)
    spokes = [system.create_actor(Spoke, server=src) for _ in range(2)]
    system.actor_instance(hub).spokes.extend(spokes)
    # Load the source server over the threshold via independent spinners.
    spinners = [system.create_actor(Spinner, server=src)
                for _ in range(2)]
    policy = compile_source("""
        server.cpu.perc > 60 and
        Spoke(s) in ref(Hub(h).spokes) =>
            reserve(h, cpu); colocate(h, s);
    """, [Hub, Spoke, Spinner])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    drive_load(system, spinners, cpu_ms=30.0, until_ms=30_000.0)
    sim.run(until=30_000.0)
    assert system.server_of(hub) is extra
    assert all(system.server_of(s) is extra for s in spokes)


def test_gem_failure_lem_times_out_and_recovers():
    sim, system = build(2)
    src = system.provisioner.servers[0]
    refs = [system.create_actor(Spinner, server=src) for _ in range(6)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    config = EmrConfig(gem_count=2, gem_reply_timeout_ms=2_000.0, **CONFIG)
    manager = ElasticityManager(system, policy, config)
    manager.start()
    manager.gems[0].fail()
    drive_load(system, refs, cpu_ms=40.0, until_ms=90_000.0)
    sim.run(until=90_000.0)
    # Progress is still made through the healthy GEM (shuffling, §4.3).
    homes = {system.server_of(ref).server_id for ref in refs}
    assert len(homes) == 2


def test_all_gems_failed_no_crash_no_progress():
    sim, system = build(2)
    src = system.provisioner.servers[0]
    refs = [system.create_actor(Spinner, server=src) for _ in range(4)]
    policy = compile_source(
        "server.cpu.perc > 80 => balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    manager.gems[0].fail()
    drive_load(system, refs, cpu_ms=40.0, until_ms=20_000.0)
    sim.run(until=20_000.0)
    assert manager.migrations_total() == 0


def test_stability_window_limits_migration_rate():
    sim, system = build(2)
    src = system.provisioner.servers[0]
    refs = [system.create_actor(Spinner, server=src) for _ in range(6)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    config = EmrConfig(stability_ms=1e12, **CONFIG)  # effectively never
    manager = ElasticityManager(system, policy, config)
    manager.start()
    drive_load(system, refs, cpu_ms=40.0, until_ms=30_000.0)
    sim.run(until=30_000.0)
    assert manager.migrations_total() == 0


def test_scale_out_boots_servers_when_all_overloaded():
    sim, system = build(1, boot_delay_ms=2_000.0, max_servers=4)
    src = system.provisioner.servers[0]
    refs = [system.create_actor(Spinner, server=src) for _ in range(8)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    config = EmrConfig(allow_scale_out=True, **CONFIG)
    manager = ElasticityManager(system, policy, config)
    manager.start()
    drive_load(system, refs, cpu_ms=60.0, until_ms=120_000.0)
    sim.run(until=120_000.0)
    assert system.provisioner.fleet_size() > 1
    assert manager.migrations_total() >= 1


def test_scale_in_drains_and_retires_idle_server():
    sim, system = build(3)
    refs = [system.create_actor(Spinner,
                                server=system.provisioner.servers[i % 3])
            for i in range(3)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    config = EmrConfig(allow_scale_in=True, min_servers=1, **CONFIG)
    manager = ElasticityManager(system, policy, config)
    manager.start()
    # Very light load: everything is far below the lower bound.
    drive_load(system, refs, cpu_ms=0.5, until_ms=60_000.0)
    sim.run(until=60_000.0)
    assert system.provisioner.fleet_size() < 3
    # All actors still alive and reachable.
    assert system.directory.count() == 3


def test_rule_aware_placement_colocates_new_actor():
    sim, system = build(3)
    hub = system.create_actor(Hub, server=system.provisioner.servers[2])
    policy = compile_source(
        "Spoke(s) in ref(Hub(h).spokes) => colocate(s, h);", [Hub, Spoke])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    spoke = system.create_actor(Spoke, related=hub)
    assert system.server_of(spoke) is system.server_of(hub)
    assert manager.placement.placements_by_rule == 1


def test_manager_stop_detaches():
    sim, system = build(1)
    policy = compile_source("", [Spinner])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    assert manager.profiler in system.hooks
    manager.stop()
    assert manager.profiler not in system.hooks
    assert system.placement_policy is None
    manager.stop()  # idempotent


def test_redistribution_rounds_counts_periods_with_moves():
    sim, system = build(2)
    src = system.provisioner.servers[0]
    refs = [system.create_actor(Spinner, server=src) for _ in range(6)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(system, policy, EmrConfig(**CONFIG))
    manager.start()
    drive_load(system, refs, cpu_ms=40.0, until_ms=60_000.0)
    sim.run(until=60_000.0)
    assert 1 <= manager.redistribution_rounds() <= \
        manager.migrations_total()
