"""EMR edge cases: admission, net/mem resources, report filtering,
config knobs."""

import pytest

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.sim import spawn


class NetHog(Actor):
    """Replies with large payloads: network-intensive."""

    def fetch(self):
        yield self.compute(0.05)
        return "x"


class MemHog(Actor):
    state_size_mb = 700.0

    def touch(self):
        yield self.compute(0.05)
        return True


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


class Idle(Actor):
    def noop(self):
        return None


CONFIG = dict(period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0)


def test_net_balance_rule_spreads_network_load():
    bed = build_cluster(2, instance_type="m1.small")
    hogs = [bed.system.create_actor(NetHog, server=bed.servers[0])
            for _ in range(4)]
    policy = compile_source(
        "server.net.perc > 60 or server.net.perc < 40 "
        "=> balance({NetHog}, net);", [NetHog])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    clients = [Client(bed.system, request_bytes=2_000.0)
               for _ in range(8)]

    def loop(client, ref):
        while bed.sim.now < 40_000.0:
            # Large replies saturate the m1.small NIC.
            yield bed.system.client_call(ref, "fetch",
                                         size_bytes=2_000.0,
                                         reply_bytes=200_000.0)

    for index, client in enumerate(clients):
        spawn(bed.sim, loop(client, hogs[index % 4]))
    bed.run(until_ms=40_000.0)
    homes = {bed.system.server_of(ref).server_id for ref in hogs}
    assert len(homes) == 2
    assert manager.migrations_total() >= 1


def test_mem_reserve_rule_relieves_memory_pressure():
    bed = build_cluster(2, instance_type="m1.small")  # 1.7 GB each
    hogs = [bed.system.create_actor(MemHog, server=bed.servers[0])
            for _ in range(2)]  # 1.4 GB on one server: > 70%
    policy = compile_source(
        "server.mem.perc > 70 => reserve(MemHog(m), mem);", [MemHog])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    # A 700 MB state transfer over the m1.small NIC takes ~23 s of
    # virtual time; give the live migration room to finish.
    bed.run(until_ms=60_000.0)
    assert {bed.system.server_of(ref).server_id for ref in hogs} != \
        {bed.servers[0].server_id}
    assert bed.servers[0].memory_percent() < 70.0


def test_admission_rejects_move_that_would_overload_target():
    bed = build_cluster(2)
    # Target server already loaded close to the admission bound.
    busy = [bed.system.create_actor(Spinner, server=bed.servers[1])
            for _ in range(4)]
    crowded = [bed.system.create_actor(Spinner, server=bed.servers[0])
               for _ in range(4)]
    policy = compile_source(
        "server.cpu.perc > 70 => balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        admission_upper=80.0, **CONFIG))
    manager.start()
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < 30_000.0:
            yield client.call(ref, "spin", 40.0)

    for ref in busy + crowded:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=30_000.0)
    # Both sides saturated: moves must not pile actors onto one server.
    counts = sorted(len(bed.system.actors_on(s)) for s in bed.servers)
    assert counts[1] - counts[0] <= 2


def test_report_filtering_sends_only_rule_relevant_types():
    bed = build_cluster(1)
    bed.system.create_actor(Spinner)
    bed.system.create_actor(Idle)
    policy = compile_source(
        "server.cpu.perc > 80 => balance({Spinner}, cpu);",
        [Spinner, Idle])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    lem = next(iter(manager.lems.values()))
    records = bed.system.actors_on(bed.servers[0])
    snaps = manager.profiler.snapshot_actors(records)
    related = lem._collect_actors_for_res_rules(snaps)
    assert {snap.type_name for snap in related} == {"Spinner"}


def test_min_reports_delays_gem_processing():
    bed = build_cluster(2)
    policy = compile_source(
        "server.cpu.perc > 80 => balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        min_reports=2, **CONFIG))
    manager.start()
    bed.system.create_actor(Spinner, server=bed.servers[0])
    bed.run(until_ms=16_000.0)
    # With two servers reporting, rounds process normally.
    assert manager.gems[0].rounds_processed >= 1


def test_zero_period_config_not_allowed_in_practice():
    # Guard against degenerate configuration values.
    config = EmrConfig(period_ms=5_000.0, stability_ms=None)
    assert config.stability_window_ms() == 5_000.0
    config = EmrConfig(period_ms=5_000.0, stability_ms=1_000.0)
    assert config.stability_window_ms() == 1_000.0


def test_manager_survives_empty_fleet_rounds():
    bed = build_cluster(1)
    policy = compile_source(
        "server.cpu.perc > 80 => balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    # No actors at all: rounds still tick without errors.
    bed.run(until_ms=20_000.0)
    assert manager.migrations_total() == 0


def test_draining_server_not_used_as_target():
    bed = build_cluster(3)
    policy = compile_source("", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    manager.mark_draining(bed.servers[2])
    target = manager.least_loaded_server()
    assert target is not bed.servers[2]


def test_migration_log_and_stats_accessors():
    bed = build_cluster(2)
    refs = [bed.system.create_actor(Spinner, server=bed.servers[0])
            for _ in range(6)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(**CONFIG))
    manager.start()
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < 20_000.0:
            yield client.call(ref, "spin", 40.0)

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=20_000.0)
    assert manager.migrations_total() == len(manager.migration_log)
    for event in manager.migration_log:
        assert event.kind in ("balance", "reserve", "colocate", "separate")
        assert event.src != event.dst
