"""Flat-vs-hierarchical control-plane differential harness.

The hierarchical control plane is only admissible if it is *invisible*
where it has nothing to do: with a single server group the GEM tree is
degenerate and every decision, event, and placement must be
bit-identical to the flat layout.  Three layers pin this down:

1. **Golden scenarios** — the Fig. 7 / Fig. 9 equivalence runners from
   ``tests/profiling/test_incremental_equivalence.py`` executed under
   both control planes, asserting byte-identical elasticity traces,
   migration logs, and final placements.
2. **Corpus differential** — every checked-in fuzz corpus artifact
   replayed under both modes, asserting equal result fingerprints
   (violations, migrations, timing, drop/checkpoint counters).
3. **Multi-group decision equivalence** — property-based: on workloads
   with no cross-group pressure, a *real* multi-group tree must reach
   exactly the decisions the flat plane reaches (hypothesis-driven),
   while a directed cross-group hot-spot must make the root tier — and
   only the root tier — migrate across groups.
"""

import dataclasses
import glob
import os
import sys
from contextlib import contextmanager

import pytest

from repro.actors import Client
from repro.apps.estore import Partition
from repro.bench import build_cluster
from repro.apps.estore import build_estore
from repro.check import InvariantChecker
from repro.cli import load_fuzz_scenario
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.fuzz import run_scenario
from repro.fuzz.runner import _reset_id_counters
from repro.sim import Timeout, spawn

# The golden scenario runners live in tests/profiling/; make them
# importable even when only this file is collected.
_PROFILING_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              os.pardir, "profiling")
if _PROFILING_DIR not in sys.path:
    sys.path.insert(0, _PROFILING_DIR)

from test_incremental_equivalence import (run_estore_scenario,  # noqa: E402
                                          run_pagerank_scenario)

CORPUS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir, "fuzz", "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


# ---------------------------------------------------------------------------
# 1. Golden scenarios under a degenerate (single-group) hierarchy
# ---------------------------------------------------------------------------

@contextmanager
def forced_control_plane(mode):
    """Re-route every ``ElasticityManager`` constructed inside the block
    onto ``mode`` with a single server group (the degenerate tree the
    equivalence claim is about), leaving all other knobs untouched."""
    original = ElasticityManager.__init__

    def patched(self, system, policy, config=None):
        config = dataclasses.replace(config or EmrConfig(),
                                     control_plane=mode,
                                     server_group_size=None)
        original(self, system, policy, config)

    ElasticityManager.__init__ = patched
    try:
        yield
    finally:
        ElasticityManager.__init__ = original


def test_pagerank_golden_identical_across_control_planes():
    with forced_control_plane("flat"):
        flat = run_pagerank_scenario(incremental=True)
    with forced_control_plane("hierarchical"):
        tree = run_pagerank_scenario(incremental=True)
    assert flat == tree


def test_pagerank_differential_is_not_vacuous():
    with forced_control_plane("hierarchical"):
        trace, _placements, migrations = run_pagerank_scenario(
            incremental=True)
    assert any("migration" in line for line in trace)
    assert migrations


def test_estore_golden_identical_across_control_planes():
    with forced_control_plane("flat"):
        flat = run_estore_scenario(incremental=True)
    with forced_control_plane("hierarchical"):
        tree = run_estore_scenario(incremental=True)
    assert flat == tree


def test_estore_differential_is_not_vacuous():
    with forced_control_plane("hierarchical"):
        _trace, _placements, migrations = run_estore_scenario(
            incremental=True)
    assert migrations


# ---------------------------------------------------------------------------
# 2. Corpus differential: every regression artifact, both control planes
# ---------------------------------------------------------------------------

def _fingerprint(result):
    """Everything observable about a run except ``checks_run``: the
    checker registers extra handlers for hierarchical-only event kinds,
    so its check *count* may legitimately differ while every decision
    stays identical."""
    return {
        "crashed": result.error is not None,
        "violations": [str(v) for v in result.violations],
        "migrations": result.migrations,
        "sim_time_ms": result.sim_time_ms,
        "messages_dropped": result.messages_dropped,
        "partition_drops": result.partition_drops,
        "checkpoints_written": result.checkpoints_written,
        "checkpoints_acked": result.checkpoints_acked,
        "state_restores": result.state_restores,
        "messages_shed": result.messages_shed,
        "requests_rejected": result.requests_rejected,
        "dead_letters": result.dead_letters,
        "store_summary": result.store_summary,
    }


@pytest.mark.parametrize("artifact", CORPUS,
                         ids=[os.path.basename(p) for p in CORPUS])
def test_corpus_identical_under_degenerate_hierarchy(artifact):
    scenario = load_fuzz_scenario(artifact)
    flat = run_scenario(dataclasses.replace(
        scenario, control_plane="flat", server_group_size=None))
    tree = run_scenario(dataclasses.replace(
        scenario, control_plane="hierarchical", server_group_size=None))
    assert flat.ok, flat.summary()
    assert _fingerprint(flat) == _fingerprint(tree)


def test_corpus_is_present():
    # The parametrized differential above silently passes if the corpus
    # glob matches nothing; fail loudly instead.
    assert len(CORPUS) >= 9


# ---------------------------------------------------------------------------
# 3. Multi-group decision equivalence (real tree, no cross-group pressure)
# ---------------------------------------------------------------------------

#: Actor-local colocation only: no resource rules, so LEM rounds never
#: block on GEM replies and every decision is a pure function of the
#: refs — the modes may only differ if the control plane itself leaks.
COLOCATE_ONLY = """
Partition(p2) in ref(Partition(p1).children) => colocate(p1, p2);
"""

#: A resource rule that can never fire: REPORTs, aggregates and root
#: rounds all flow (the hierarchy is exercised), but no decision can
#: come out of either tier's planner.
UNREACHABLE_RESERVE = """
server.cpu.perc > 99 and
client.call(Partition(p1).read).perc > 99 => reserve(p1, cpu);
"""


def _deploy_split_estore(bed, num_roots=6, children_per_root=2):
    """Roots round-robin, children deliberately on the *next* server so
    the colocate rule has real work on every server."""
    roots, children = [], []
    for index in range(num_roots):
        server = bed.servers[index % len(bed.servers)]
        away = bed.servers[(index + 1) % len(bed.servers)]
        root = bed.system.create_actor(Partition, 0, server=server)
        kids = [bed.system.create_actor(Partition, 1, server=away)
                for _ in range(children_per_root)]
        bed.system.actor_instance(root).children.extend(kids)
        roots.append(root)
        children.append(kids)
    return roots, children


def _run_multigroup(mode, *, seed, servers, group_size, rules,
                    pack=False, cross_group_band=95.0, clients=4,
                    duration_ms=25_000.0, instance_type="m5.large"):
    """One deterministic estore run under ``mode``; returns decisions,
    placements, started-migration events, and control-plane stats."""
    _reset_id_counters()
    bed = build_cluster(servers, instance_type, seed=seed)
    if pack:
        setup = build_estore(bed, num_roots=8, children_per_root=2,
                             num_home_servers=1)
        roots, children = list(setup.roots), list(setup.children)
        picker = setup.picker
    else:
        roots, children = _deploy_split_estore(bed)
        picker = None
    policy = compile_source(rules, [Partition])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0, lem_stagger_ms=10.0,
        control_plane=mode,
        server_group_size=(group_size if mode == "hierarchical" else None),
        cross_group_band=cross_group_band))
    checker = InvariantChecker(manager)
    checker.attach()
    started = []

    def on_event(kind, detail):
        if kind == "migration-started":
            started.append(dict(detail))

    manager.add_listener(on_event)
    manager.start()

    rng = bed.streams.stream("diff-key-pick")
    client_list = [Client(bed.system, name=f"c{i}") for i in range(clients)]

    def loop(client):
        while bed.sim.now < duration_ms:
            if picker is not None:
                root = picker.pick()
            else:
                root = roots[rng.randrange(len(roots))]
            yield from client.timed_call(root, "read", rng.randrange(10_000))
            yield Timeout(bed.sim, 10.0)

    for client in client_list:
        spawn(bed.sim, loop(client))
    bed.run(until_ms=duration_ms + 10_000.0)
    checker.assert_clean()

    refs = list(roots)
    for kids in children:
        refs.extend(kids)
    placements = sorted((str(ref), bed.system.server_of(ref).name)
                        for ref in refs)
    decisions = sorted((str(event.actor), event.kind, event.src, event.dst)
                       for event in manager.migration_log)
    timed = [(event.time_ms, str(event.actor), event.kind,
              event.src, event.dst) for event in manager.migration_log]
    stats = {"aggregates": 0, "root_rounds": 0, "cross_planned": 0}
    if manager.hierarchy is not None:
        root_gem = manager.hierarchy.root
        stats = {"aggregates": root_gem.aggregates_received,
                 "root_rounds": root_gem.rounds_processed,
                 "cross_planned": root_gem.cross_migrations_planned}
    manager.stop()
    checker.detach()
    return {"decisions": decisions, "timed": timed,
            "placements": placements, "started": started,
            "stats": stats, "manager": manager, "bed": bed}


def test_multigroup_colocate_decisions_equivalent():
    """Actor-rule decisions never consult the GEM tier, so a real
    multi-group tree must reproduce the flat run *exactly* — including
    migration timestamps."""
    flat = _run_multigroup("flat", seed=29, servers=4, group_size=2,
                          rules=COLOCATE_ONLY)
    tree = _run_multigroup("hierarchical", seed=29, servers=4,
                          group_size=2, rules=COLOCATE_ONLY)
    assert flat["decisions"], "vacuous: colocate produced no migrations"
    assert flat["timed"] == tree["timed"]
    assert flat["placements"] == tree["placements"]


def test_multigroup_quiet_policy_adds_no_decisions():
    """With an unreachable resource rule the full hierarchical pipeline
    runs (REPORTs, aggregates, root rounds) yet neither tier may invent
    a migration the flat plane would not make — here, none at all."""
    flat = _run_multigroup("flat", seed=31, servers=6, group_size=3,
                          rules=UNREACHABLE_RESERVE)
    tree = _run_multigroup("hierarchical", seed=31, servers=6,
                          group_size=3, rules=UNREACHABLE_RESERVE)
    assert flat["decisions"] == [] == tree["decisions"]
    assert flat["placements"] == tree["placements"]
    # Not vacuous: the tree really ran — aggregates flowed and the root
    # held rounds; it just (correctly) decided nothing.
    assert tree["stats"]["aggregates"] > 0
    assert tree["stats"]["root_rounds"] > 0
    assert tree["stats"]["cross_planned"] == 0


@pytest.mark.parametrize("servers,group_size", [(4, 2), (5, 2), (6, 3)])
def test_multigroup_decision_equivalence_sweep(servers, group_size):
    """The colocate equivalence holds across group shapes, including a
    ragged final group (5 servers / groups of 2)."""
    flat = _run_multigroup("flat", seed=37 + servers, servers=servers,
                          group_size=group_size, rules=COLOCATE_ONLY)
    tree = _run_multigroup("hierarchical", seed=37 + servers,
                          servers=servers, group_size=group_size,
                          rules=COLOCATE_ONLY)
    assert flat["decisions"]
    assert flat["timed"] == tree["timed"]
    assert flat["placements"] == tree["placements"]


def test_multigroup_property_random_seeds():
    """Property-based sweep over seeds and tree shapes: no-pressure
    workloads decide identically under both control planes."""
    hypothesis = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")

    @hypothesis.settings(max_examples=6, deadline=None,
                         suppress_health_check=list(
                             hypothesis.HealthCheck))
    @hypothesis.given(seed=st.integers(min_value=0, max_value=2**16),
                      servers=st.integers(min_value=4, max_value=6),
                      group_size=st.sampled_from([2, 3]))
    def check(seed, servers, group_size):
        flat = _run_multigroup("flat", seed=seed, servers=servers,
                              group_size=group_size, rules=COLOCATE_ONLY,
                              duration_ms=15_000.0, clients=2)
        tree = _run_multigroup("hierarchical", seed=seed, servers=servers,
                              group_size=group_size, rules=COLOCATE_ONLY,
                              duration_ms=15_000.0, clients=2)
        assert flat["timed"] == tree["timed"]
        assert flat["placements"] == tree["placements"]

    check()


# ---------------------------------------------------------------------------
# 4. Directed cross-group pressure: the root tier must act, and only it
# ---------------------------------------------------------------------------

def test_root_arbitrates_cross_group_hotspot():
    """Pack every actor into group 0 with quiet leaves and a low
    cross-group band: only the root tier can relieve the hot spot, so
    root-issued cross-group migrations must appear — and every
    cross-group move must be root-issued (the single-authority
    invariant the checker enforces)."""
    run = _run_multigroup("hierarchical", seed=41, servers=4,
                          group_size=2, rules=UNREACHABLE_RESERVE,
                          pack=True, cross_group_band=10.0, clients=12,
                          duration_ms=40_000.0, instance_type="m1.small")
    stats = run["stats"]
    assert stats["aggregates"] > 0
    assert stats["cross_planned"] > 0

    hierarchy = run["manager"].hierarchy
    by_name = {server.name: server for server in run["bed"].servers}

    def group_of(name):
        return hierarchy.groups.group_of(by_name[name].server_id)

    root_moves = [event for event in run["started"]
                  if event["issuer"] == "root"]
    assert root_moves, "root planned moves but none started"
    for event in root_moves:
        assert group_of(event["src"]) != group_of(event["dst"])
    # Quiet leaves: every executed migration this run was root-issued.
    assert all(event["issuer"] == "root" for event in run["started"])
    # And the hot spot actually moved toward group 1.
    assert any(group_of(event["dst"]) == 1 for event in root_moves)
