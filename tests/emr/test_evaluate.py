"""Unit tests for rule evaluation over snapshots."""

import pytest

from repro.actors import Actor, ActorRef
from repro.cluster import Server, instance_type
from repro.core.emr import (EvaluationScope, compare, evaluate_rule,
                            extract_bounds)
from repro.core.emr.evaluate import colocate_groups
from repro.core.epl import compile_source
from repro.core.profiling import ActorSnapshot, ServerSnapshot
from repro.sim import Simulator


class Folder(Actor):
    files: list

    def __init__(self):
        self.files = []

    def open(self):
        return 1


class File(Actor):
    def read(self):
        return 2


class Stream(Actor):
    def push(self):
        return 3


class User(Actor):
    def track(self):
        return 4


ALL = [Folder, File, Stream, User]

_next_id = [1]


def make_server(sim, name="s"):
    return Server(sim, instance_type("m5.large"), name=name)


def snap_server(server, cpu=50.0, mem=10.0, net=10.0, actors=0):
    return ServerSnapshot(server=server, cpu_perc=cpu, mem_perc=mem,
                          net_perc=net, actor_count=actors, vcpus=2,
                          instance_type="m5.large")


def snap_actor(type_name, server, cpu=5.0, calls=None, call_perc=None,
               pairs=None, refs=None, pinned=False):
    actor_id = _next_id[0]
    _next_id[0] += 1
    return ActorSnapshot(
        ref=ActorRef(actor_id=actor_id, type_name=type_name),
        server=server, cpu_perc=cpu, cpu_ms_per_min=cpu * 1200.0,
        mem_mb=1.0, mem_perc=0.1, net_bytes_per_min=0.0, net_perc=0.0,
        call_count_per_min=dict(calls or {}),
        call_perc=dict(call_perc or {}),
        pair_count_per_min=dict(pairs or {}),
        refs=dict(refs or {}), pinned=pinned)


def make_scope(servers, actors):
    by_id = {snap.actor_id: snap for snap in actors}

    def resolve(ref):
        return by_id.get(ref.actor_id)

    return EvaluationScope(servers=servers, actors=actors,
                           resolve_ref=resolve)


def test_compare_operators():
    assert compare(5, "<", 10) and compare(10, ">", 5)
    assert compare(5, "<=", 5) and compare(5, ">=", 5)
    assert not compare(5, ">", 5)
    with pytest.raises(ValueError):
        compare(1, "==", 1)


def test_server_condition_selects_matching_servers():
    sim = Simulator()
    hot = snap_server(make_server(sim, "hot"), cpu=90.0)
    cold = snap_server(make_server(sim, "cold"), cpu=30.0)
    compiled = compile_source(
        "server.cpu.perc > 80 => balance({Folder}, cpu);", ALL)
    scope = make_scope([hot, cold], [])
    matches = evaluate_rule(compiled.resource_rules[0], scope)
    assert [m.subject_server.name for m in matches] == ["hot"]


def test_client_call_perc_binds_actor_on_subject_server():
    sim = Simulator()
    server = make_server(sim)
    server_snap = snap_server(server, cpu=90.0)
    hot = snap_actor("Folder", server,
                     call_perc={("client", "open"): 60.0})
    cold = snap_actor("Folder", server,
                      call_perc={("client", "open"): 10.0})
    compiled = compile_source(
        "server.cpu.perc > 80 and "
        "client.call(Folder(fo).open).perc > 40 => reserve(fo, cpu);", ALL)
    scope = make_scope([server_snap], [hot, cold])
    matches = evaluate_rule(compiled.resource_rules[0], scope)
    assert len(matches) == 1
    assert matches[0].bindings["fo"].actor_id == hot.actor_id


def test_actor_on_other_server_not_selected_for_server_scoped_feature():
    sim = Simulator()
    hot_server = make_server(sim, "hot")
    other_server = make_server(sim, "other")
    hot_snap = snap_server(hot_server, cpu=90.0)
    other_snap = snap_server(other_server, cpu=20.0)
    elsewhere = snap_actor("Folder", other_server,
                           call_perc={("client", "open"): 90.0})
    compiled = compile_source(
        "server.cpu.perc > 80 and "
        "client.call(Folder(fo).open).perc > 40 => reserve(fo, cpu);", ALL)
    scope = make_scope([hot_snap, other_snap], [elsewhere])
    assert evaluate_rule(compiled.resource_rules[0], scope) == []


def test_ref_condition_joins_members_to_containers():
    sim = Simulator()
    server = make_server(sim)
    server_snap = snap_server(server)
    file_a = snap_actor("File", server)
    file_b = snap_actor("File", server)
    folder = snap_actor("Folder", server,
                        refs={"files": (file_a.ref, file_b.ref)})
    compiled = compile_source(
        "File(fi) in ref(Folder(fo).files) => colocate(fo, fi);", ALL)
    scope = make_scope([server_snap], [folder, file_a, file_b])
    matches = evaluate_rule(compiled.actor_rules[0], scope)
    members = sorted(m.bindings["fi"].actor_id for m in matches)
    assert members == sorted([file_a.actor_id, file_b.actor_id])
    assert all(m.bindings["fo"].actor_id == folder.actor_id
               for m in matches)


def test_ref_condition_filters_by_member_type():
    sim = Simulator()
    server = make_server(sim)
    server_snap = snap_server(server)
    stranger = snap_actor("Stream", server)
    folder = snap_actor("Folder", server, refs={"files": (stranger.ref,)})
    compiled = compile_source(
        "File(fi) in ref(Folder(fo).files) => colocate(fo, fi);", ALL)
    scope = make_scope([server_snap], [folder, stranger])
    assert evaluate_rule(compiled.actor_rules[0], scope) == []


def test_actor_pair_call_count_binds_both_sides():
    sim = Simulator()
    server = make_server(sim)
    server_snap = snap_server(server)
    stream = snap_actor("Stream", server)
    user = snap_actor("User", server,
                      pairs={(stream.actor_id, "track"): 12.0})
    compiled = compile_source(
        "Stream(v).call(User(u).track).count > 0 => colocate(v, u);", ALL)
    scope = make_scope([server_snap], [stream, user])
    matches = evaluate_rule(compiled.actor_rules[0], scope)
    assert len(matches) == 1
    assert matches[0].bindings["v"].actor_id == stream.actor_id
    assert matches[0].bindings["u"].actor_id == user.actor_id


def test_behavior_only_variable_binds_on_subject_server():
    sim = Simulator()
    hot_server = make_server(sim, "hot")
    cold_server = make_server(sim, "cold")
    hot_snap = snap_server(hot_server, cpu=60.0)
    cold_snap = snap_server(cold_server, cpu=10.0)
    on_hot = snap_actor("Stream", hot_server)
    on_cold = snap_actor("Stream", cold_server)
    compiled = compile_source(
        "server.cpu.perc > 50 => reserve(Stream(v), cpu);", ALL)
    scope = make_scope([hot_snap, cold_snap], [on_hot, on_cold])
    matches = evaluate_rule(compiled.resource_rules[0], scope)
    assert len(matches) == 1
    assert matches[0].bindings["v"].actor_id == on_hot.actor_id


def test_or_condition_produces_union_of_matches():
    sim = Simulator()
    hot = snap_server(make_server(sim, "hot"), cpu=90.0)
    idle = snap_server(make_server(sim, "idle"), cpu=10.0)
    mid = snap_server(make_server(sim, "mid"), cpu=70.0)
    compiled = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Folder}, cpu);", ALL)
    scope = make_scope([hot, idle, mid], [])
    names = {m.subject_server.name
             for m in evaluate_rule(compiled.resource_rules[0], scope)}
    assert names == {"hot", "idle"}


def test_extract_bounds_from_balance_rule():
    compiled = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Folder}, cpu);", ALL)
    lower, upper = extract_bounds(compiled.resource_rules[0], "cpu")
    assert (lower, upper) == (60.0, 80.0)


def test_extract_bounds_defaults_when_missing():
    compiled = compile_source(
        "server.cpu.perc < 50 => balance({Folder}, cpu);", ALL)
    lower, upper = extract_bounds(compiled.resource_rules[0], "cpu")
    assert (lower, upper) == (50.0, 80.0)

    compiled = compile_source("true => balance({Folder}, cpu);", ALL)
    lower, upper = extract_bounds(compiled.resource_rules[0], "cpu",
                                  default_lower=55.0, default_upper=75.0)
    assert (lower, upper) == (55.0, 75.0)


def test_colocate_groups_union_find():
    sim = Simulator()
    server = make_server(sim)
    server_snap = snap_server(server)
    file_a = snap_actor("File", server)
    file_b = snap_actor("File", server)
    folder = snap_actor("Folder", server,
                        refs={"files": (file_a.ref, file_b.ref)})
    loner = snap_actor("Stream", server)
    compiled = compile_source(
        "File(fi) in ref(Folder(fo).files) => colocate(fo, fi);", ALL)
    scope = make_scope([server_snap], [folder, file_a, file_b, loner])
    groups = colocate_groups(compiled.actor_rules, scope)
    assert groups[folder.actor_id] == groups[file_a.actor_id]
    assert groups[file_a.actor_id] == groups[file_b.actor_id]
    assert loner.actor_id not in groups
