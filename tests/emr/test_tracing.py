"""Tests for the elasticity event tracer."""

import pytest

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.core.tracing import ElasticityTracer, TraceEvent
from repro.sim import spawn


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def setup_traced():
    bed = build_cluster(2)
    refs = [bed.system.create_actor(Spinner, server=bed.servers[0])
            for _ in range(6)]
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=5_000.0, gem_wait_ms=300.0))
    manager.start()
    tracer = ElasticityTracer(manager)
    tracer.attach()
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < 30_000.0:
            yield client.call(ref, "spin", 40.0)

    for ref in refs:
        spawn(bed.sim, loop(ref))
    return bed, manager, tracer, refs


def test_tracer_records_migrations():
    bed, manager, tracer, _refs = setup_traced()
    bed.run(until_ms=30_000.0)
    migrations = tracer.of_kind("migration")
    assert len(migrations) == manager.migrations_total()
    event = migrations[0]
    assert {"actor", "src", "dst"} <= set(event.detail)
    assert event.time_ms > 0


def test_tracer_records_actor_lifecycle():
    bed, manager, tracer, refs = setup_traced()
    extra = bed.system.create_actor(Spinner)
    bed.system.destroy_actor(extra)
    assert len(tracer.of_kind("actor-created")) == 1  # attached after setup
    assert len(tracer.of_kind("actor-destroyed")) == 1


def test_tracer_records_server_events():
    bed, manager, tracer, _refs = setup_traced()
    done = bed.provisioner.boot_server(immediate=True)
    bed.run(until_ms=1.0)
    joined = tracer.of_kind("server-joined")
    assert len(joined) == 1
    bed.provisioner.retire_server(done.value)
    assert len(tracer.of_kind("server-retired")) == 1


def test_summary_and_timeline():
    bed, manager, tracer, _refs = setup_traced()
    bed.run(until_ms=30_000.0)
    summary = tracer.summary()
    assert summary.get("migration", 0) >= 1
    timeline = tracer.timeline(bucket_ms=10_000.0)
    assert sum(counts.get("migration", 0)
               for counts in timeline.values()) == summary["migration"]


def test_detach_stops_recording():
    bed, manager, tracer, _refs = setup_traced()
    tracer.detach()
    bed.system.create_actor(Spinner)
    assert tracer.of_kind("actor-created") == []
    tracer.detach()  # idempotent


def test_event_rendering():
    event = TraceEvent(time_ms=1234.5, kind="migration",
                       detail={"actor": "<W#1>", "src": "a", "dst": "b"})
    text = str(event)
    assert "migration" in text and "src=a" in text and "1.234s" in text


def test_max_events_bound():
    bed, manager, tracer, _refs = setup_traced()
    tracer.max_events = 2
    for _ in range(5):
        bed.system.create_actor(Spinner)
    assert len(tracer.events) == 2
    assert tracer.dropped == 3
