"""Unit tests for balance/reserve/drain planning heuristics."""

import pytest

from repro.actors import ActorRef
from repro.cluster import Server, instance_type
from repro.core.emr import (contribution_perc, plan_balance, plan_drain,
                            plan_reserve)
from repro.core.profiling import ActorSnapshot, ServerSnapshot
from repro.sim import Simulator

_next_id = [1]


def server_pair(sim, names=("a", "b"), type_name="m5.large"):
    return [Server(sim, instance_type(type_name), name=n) for n in names]


def snap_server(server, cpu, actor_count=10):
    return ServerSnapshot(server=server, cpu_perc=cpu, mem_perc=0.0,
                          net_perc=0.0, actor_count=actor_count,
                          vcpus=server.itype.vcpus,
                          instance_type=server.itype.name)


def snap_actor(server, cpu_perc, type_name="Worker", pinned=False,
               placed_at=0.0):
    actor_id = _next_id[0]
    _next_id[0] += 1
    capacity = 60_000.0 * server.itype.vcpus
    return ActorSnapshot(
        ref=ActorRef(actor_id=actor_id, type_name=type_name),
        server=server, cpu_perc=cpu_perc,
        cpu_ms_per_min=cpu_perc / 100.0 * capacity,
        mem_mb=1.0, mem_perc=0.1, net_bytes_per_min=0.0, net_perc=0.0,
        pinned=pinned, last_placed_at=placed_at)


def test_contribution_rescales_for_speed():
    sim = Simulator()
    slow = Server(sim, instance_type("m1.small"))   # speed 0.5, 1 vcpu
    fast = Server(sim, instance_type("m1.medium"))  # speed 1.0, 1 vcpu
    actor = snap_actor(slow, cpu_perc=40.0)
    # Moving to a 2x faster server halves the busy-ms, same vcpu count.
    assert contribution_perc(actor, fast, "cpu") == pytest.approx(20.0)


def test_overload_moves_to_idle_server():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 95.0), snap_server(b, 20.0)]
    actors = {a.server_id: [snap_actor(a, 25.0), snap_actor(a, 30.0),
                            snap_actor(a, 40.0)],
              b.server_id: []}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        lower=60.0, upper=80.0, now=100_000.0,
                        stability_ms=10_000.0, max_moves_per_server=3)
    assert plan.actions
    assert all(action.dst is b for action in plan.actions)
    assert not plan.need_scale_out


def test_in_band_servers_produce_no_actions():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 70.0), snap_server(b, 65.0)]
    actors = {a.server_id: [snap_actor(a, 30.0)],
              b.server_id: [snap_actor(b, 30.0)]}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        60.0, 80.0, 100_000.0, 10_000.0, 3)
    assert plan.actions == []


def test_pinned_and_recent_actors_not_moved():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 95.0), snap_server(b, 10.0)]
    actors = {a.server_id: [
        snap_actor(a, 50.0, pinned=True),
        snap_actor(a, 45.0, placed_at=95_000.0),  # inside stability
    ], b.server_id: []}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        60.0, 80.0, now=100_000.0, stability_ms=10_000.0,
                        max_moves_per_server=3)
    assert plan.actions == []
    assert plan.need_scale_out  # overloaded but nothing can move


def test_type_filter_respected():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 95.0), snap_server(b, 10.0)]
    actors = {a.server_id: [snap_actor(a, 50.0, type_name="Other")],
              b.server_id: []}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        60.0, 80.0, 100_000.0, 10_000.0, 3)
    assert plan.actions == []


def test_all_overloaded_flag_set():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 95.0), snap_server(b, 90.0)]
    actors = {a.server_id: [snap_actor(a, 95.0)],
              b.server_id: [snap_actor(b, 90.0)]}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        60.0, 80.0, 100_000.0, 10_000.0, 3)
    assert plan.all_overloaded


def test_underload_path_feeds_idle_servers():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 76.0), snap_server(b, 30.0)]
    actors = {a.server_id: [snap_actor(a, 18.0), snap_actor(a, 20.0),
                            snap_actor(a, 19.0), snap_actor(a, 19.0)],
              b.server_id: [snap_actor(b, 30.0)]}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        lower=50.0, upper=80.0, now=100_000.0,
                        stability_ms=10_000.0, max_moves_per_server=3)
    assert plan.actions
    assert all(action.dst is b for action in plan.actions)


def test_moves_strictly_reduce_pair_peak():
    sim = Simulator()
    a, b = server_pair(sim)
    # Moving the 45% actor to a 50% server would raise the peak; the
    # planner must refuse rather than create a new hotspot.
    servers = [snap_server(a, 85.0), snap_server(b, 50.0)]
    actors = {a.server_id: [snap_actor(a, 45.0), snap_actor(a, 40.0)],
              b.server_id: []}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        60.0, 80.0, 100_000.0, 10_000.0, 3)
    for action in plan.actions:
        contrib = contribution_perc(action.actor, b, "cpu")
        assert 50.0 + contrib < 85.0


def test_groups_move_as_units():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 95.0), snap_server(b, 5.0)]
    anchor = snap_actor(a, 20.0)
    partner = snap_actor(a, 10.0)
    solo = snap_actor(a, 8.0)
    actors = {a.server_id: [anchor, partner, solo], b.server_id: []}
    groups = {anchor.actor_id: 1, partner.actor_id: 1}
    plan = plan_balance(servers, actors, ("Worker",), "cpu",
                        60.0, 80.0, 100_000.0, 10_000.0, 3, groups=groups)
    moved = {action.actor_id for action in plan.actions}
    # If any group member moved, the whole group moved with it.
    if anchor.actor_id in moved or partner.actor_id in moved:
        assert {anchor.actor_id, partner.actor_id} <= moved
        dsts = {action.dst.name for action in plan.actions
                if action.actor_id in (anchor.actor_id, partner.actor_id)}
        assert len(dsts) == 1


def test_reserve_prefers_dedicated_idle_server():
    sim = Simulator()
    a, b, c = [Server(sim, instance_type("m5.large"), name=n)
               for n in ("src", "busy", "empty")]
    servers = [snap_server(a, 90.0), snap_server(b, 40.0),
               snap_server(c, 5.0)]
    hot = snap_actor(a, 30.0)
    other = snap_actor(a, 20.0)
    actors = {a.server_id: [hot, other],
              b.server_id: [snap_actor(b, 40.0)],
              c.server_id: []}
    actions, scale = plan_reserve(hot, servers, actors, "cpu",
                                  admission_upper=80.0, now=100_000.0,
                                  stability_ms=10_000.0)
    assert not scale
    assert len(actions) == 1
    assert actions[0].dst is c


def test_reserve_noop_when_already_dedicated():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 90.0, actor_count=1), snap_server(b, 5.0)]
    alone = snap_actor(a, 88.0)
    actors = {a.server_id: [alone], b.server_id: []}
    actions, scale = plan_reserve(alone, servers, actors, "cpu",
                                  80.0, 100_000.0, 10_000.0)
    assert actions == [] and not scale


def test_reserve_requests_scale_out_when_no_idle_target():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 95.0), snap_server(b, 90.0)]
    hot = snap_actor(a, 30.0)
    actors = {a.server_id: [hot, snap_actor(a, 30.0)],
              b.server_id: [snap_actor(b, 90.0)]}
    actions, scale = plan_reserve(hot, servers, actors, "cpu",
                                  80.0, 100_000.0, 10_000.0, trigger=80.0)
    assert actions == []
    assert scale


def test_reserve_target_must_be_under_trigger():
    sim = Simulator()
    a, b = server_pair(sim)
    # b is below the admission bound but above the rule trigger (50):
    # it has no *idle* CPU in the rule's sense.
    servers = [snap_server(a, 90.0), snap_server(b, 60.0)]
    hot = snap_actor(a, 10.0)
    actors = {a.server_id: [hot, snap_actor(a, 30.0)],
              b.server_id: [snap_actor(b, 60.0)]}
    actions, scale = plan_reserve(hot, servers, actors, "cpu",
                                  80.0, 100_000.0, 10_000.0, trigger=50.0)
    assert actions == []
    assert scale


def test_reserve_moves_whole_group():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 90.0), snap_server(b, 5.0)]
    anchor = snap_actor(a, 20.0)
    partner = snap_actor(a, 5.0)
    stranger = snap_actor(a, 40.0)
    actors = {a.server_id: [anchor, partner, stranger], b.server_id: []}
    groups = {anchor.actor_id: 7, partner.actor_id: 7}
    actions, _ = plan_reserve(anchor, servers, actors, "cpu",
                              80.0, 100_000.0, 10_000.0, groups=groups)
    moved = {action.actor_id for action in actions}
    assert moved == {anchor.actor_id, partner.actor_id}
    assert {action.dst.name for action in actions} == {b.name}


def test_reserve_overrides_pin():
    sim = Simulator()
    a, b = server_pair(sim)
    servers = [snap_server(a, 90.0), snap_server(b, 5.0)]
    pinned = snap_actor(a, 20.0, pinned=True)
    actors = {a.server_id: [pinned, snap_actor(a, 30.0)],
              b.server_id: []}
    actions, _ = plan_reserve(pinned, servers, actors, "cpu",
                              80.0, 100_000.0, 10_000.0)
    assert len(actions) == 1


def test_drain_places_every_actor_or_fails():
    sim = Simulator()
    a, b, c = [Server(sim, instance_type("m5.large"), name=n)
               for n in ("victim", "x", "y")]
    victim = snap_server(a, 20.0)
    others = [snap_server(b, 30.0), snap_server(c, 40.0)]
    actors = [snap_actor(a, 8.0), snap_actor(a, 6.0)]
    actions = plan_drain(victim, others, actors, "cpu", upper=80.0,
                         now=100_000.0, stability_ms=10_000.0)
    assert actions is not None
    assert {action.actor_id for action in actions} == \
        {actor.actor_id for actor in actors}


def test_drain_refuses_if_an_actor_cannot_be_placed():
    sim = Simulator()
    a, b = server_pair(sim)
    victim = snap_server(a, 20.0)
    others = [snap_server(b, 79.0)]
    actors = [snap_actor(a, 10.0)]
    assert plan_drain(victim, others, actors, "cpu", 80.0,
                      100_000.0, 10_000.0) is None


def test_drain_refuses_pinned_actor():
    sim = Simulator()
    a, b = server_pair(sim)
    victim = snap_server(a, 20.0)
    others = [snap_server(b, 10.0)]
    actors = [snap_actor(a, 5.0, pinned=True)]
    assert plan_drain(victim, others, actors, "cpu", 80.0,
                      100_000.0, 10_000.0) is None
