"""Tests for the baseline elasticity managers."""

import pytest

from repro.actors import Actor, Client
from repro.baselines import (DefaultRuleManager, EStoreInApp,
                             OrleansBalancer)
from repro.bench import build_cluster
from repro.sim import spawn


class Busy(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


class Chatty(Actor):
    def __init__(self, peer=None):
        self.peer = peer

    def nudge(self):
        if self.peer is not None:
            yield self.call(self.peer, "receive")
        return True

    def receive(self):
        yield self.compute(0.1)
        return True


def drive(bed, refs, cpu_ms, until_ms):
    client = Client(bed.system)

    def loop(ref):
        while bed.sim.now < until_ms:
            yield client.call(ref, "spin", cpu_ms)

    for ref in refs:
        spawn(bed.sim, loop(ref))


def test_orleans_equalizes_actor_counts():
    bed = build_cluster(3)
    refs = [bed.system.create_actor(Busy, server=bed.servers[0])
            for _ in range(9)]
    manager = OrleansBalancer(bed.system, period_ms=3_000.0)
    manager.start()
    bed.run(until_ms=20_000.0)
    counts = sorted(len(bed.system.actors_on(s)) for s in bed.servers)
    assert counts == [3, 3, 3]
    assert manager.migrations_total() == 6


def test_orleans_does_nothing_when_counts_balanced():
    bed = build_cluster(3)
    for index in range(9):
        bed.system.create_actor(Busy, server=bed.servers[index % 3])
    manager = OrleansBalancer(bed.system, period_ms=3_000.0)
    manager.start()
    # Heavy load imbalance (all the work goes to server 0's actors), but
    # Orleans only looks at actor counts.
    drive(bed, [r.ref for r in bed.system.actors_on(bed.servers[0])],
          cpu_ms=30.0, until_ms=20_000.0)
    bed.run(until_ms=20_000.0)
    assert manager.migrations_total() == 0


def test_orleans_respects_pinned_actors():
    bed = build_cluster(2)
    refs = [bed.system.create_actor(Busy, server=bed.servers[0])
            for _ in range(4)]
    for ref in refs[:2]:
        bed.system.pin(ref)
    manager = OrleansBalancer(bed.system, period_ms=3_000.0)
    manager.start()
    bed.run(until_ms=15_000.0)
    pinned_homes = {bed.system.server_of(ref) for ref in refs[:2]}
    assert pinned_homes == {bed.servers[0]}


def test_default_rule_moves_hottest_actor():
    bed = build_cluster(2, instance_type="m1.small")
    hot = bed.system.create_actor(Busy, server=bed.servers[0])
    cold = bed.system.create_actor(Busy, server=bed.servers[0])
    manager = DefaultRuleManager(bed.system, period_ms=5_000.0,
                                 cpu_threshold=50.0)
    manager.start()
    drive(bed, [hot], cpu_ms=30.0, until_ms=20_000.0)
    bed.run(until_ms=20_000.0)
    assert bed.system.server_of(hot) is bed.servers[1]
    assert bed.system.server_of(cold) is bed.servers[0]


def test_default_rule_idle_cluster_no_moves():
    bed = build_cluster(2)
    bed.system.create_actor(Busy, server=bed.servers[0])
    manager = DefaultRuleManager(bed.system, period_ms=5_000.0)
    manager.start()
    bed.run(until_ms=20_000.0)
    assert manager.migrations_total() == 0


def test_frequency_colocation_brings_caller_to_callee():
    bed = build_cluster(2)
    callee = bed.system.create_actor(Chatty, server=bed.servers[0])
    caller = bed.system.create_actor(Chatty, callee,
                                     server=bed.servers[1])
    manager = DefaultRuleManager(bed.system, period_ms=4_000.0,
                                 migrate_hot=False,
                                 colocate_frequent=True,
                                 min_pair_rate_per_min=1.0)
    manager.start()
    client = Client(bed.system)

    def loop():
        while bed.sim.now < 15_000.0:
            yield client.call(caller, "nudge")

    spawn(bed.sim, loop())
    bed.run(until_ms=15_000.0)
    assert bed.system.server_of(caller) is bed.system.server_of(callee)
    assert manager.migrations_total() >= 1


def test_estore_inapp_moves_hot_tree_to_idle_server():
    from repro.apps.estore import build_estore
    bed = build_cluster(3, instance_type="m1.small")
    setup = build_estore(bed, num_roots=6, children_per_root=2,
                         num_home_servers=2)
    manager = EStoreInApp(bed.system, setup.roots, period_ms=5_000.0,
                          high_water=40.0)
    manager.start()
    client = Client(bed.system)

    def loop():
        while bed.sim.now < 20_000.0:
            yield client.call(setup.roots[0], "read", 3)

    spawn(bed.sim, loop())
    bed.run(until_ms=20_000.0)
    assert manager.migrations_total() >= 3  # one tree: root + children
    # The tree stayed intact: children moved with their root.
    home = bed.system.server_of(setup.roots[0])
    assert all(bed.system.server_of(kid) is home
               for kid in setup.children[0])


def test_balancer_stop_detaches_profiler():
    bed = build_cluster(1)
    manager = OrleansBalancer(bed.system, period_ms=5_000.0)
    manager.start()
    assert manager.profiler in bed.system.hooks
    manager.stop()
    assert manager.profiler not in bed.system.hooks
    manager.stop()  # idempotent
