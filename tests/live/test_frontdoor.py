"""Front-door tests: HTTP parsing, dispositions, and ledger conservation.

A scripted router exercises every disposition row in the table at the
top of ``repro/live/frontdoor.py``; a raw stream client (not the load
generator — independent implementations keep the test honest) checks
the wire behaviour, keep-alive, and that the ledger balances.
"""

import asyncio
import json

from repro.actors.message import Overloaded
from repro.live import FrontDoor, RequestLedger
from repro.live.system import ActorGone


async def scripted_router(method, path, body):
    if path == "/ok":
        return 200, {"echo": json.loads(body) if body else None}
    if path == "/missing":
        raise KeyError("no such room")
    if path == "/gone":
        raise ActorGone("actor destroyed")
    if path == "/boom":
        raise RuntimeError("handler exploded")
    if path == "/busy":
        return 200, {"result": Overloaded("shed")}
    raise KeyError(path)


async def _request(reader, writer, method, path, body=b"",
                   extra_headers=""):
    head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n{extra_headers}\r\n")
    writer.write(head.encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    payload = json.loads(await reader.readexactly(length)) if length else {}
    return status, payload


def test_dispositions_and_ledger_balance():
    async def main():
        front = FrontDoor(scripted_router)
        await front.start()
        reader, writer = await asyncio.open_connection(*front.address)

        status, payload = await _request(reader, writer, "POST", "/ok",
                                         b'{"x": 1}')
        assert (status, payload) == (200, {"echo": {"x": 1}})
        assert (await _request(reader, writer, "GET", "/missing"))[0] == 404
        assert (await _request(reader, writer, "GET", "/gone"))[0] == 404
        status, payload = await _request(reader, writer, "GET", "/boom")
        assert status == 500 and "RuntimeError" in payload["error"]
        status, payload = await _request(reader, writer, "GET", "/busy")
        assert status == 503 and payload["retriable"] is True
        assert (await _request(reader, writer, "GET", "/healthz"))[0] == 200

        status, payload = await _request(reader, writer, "GET", "/stats")
        assert status == 200
        ledger = payload["ledger"]
        # /stats sees itself as issued but not yet disposed.
        assert ledger == {"issued": 7, "answered": 2, "rejected": 2,
                          "shed": 1, "failed": 1, "bad_request": 0,
                          "outstanding": 1}
        assert payload["latency"]["count"] == 6
        assert payload["latency"]["p99"] is not None

        writer.close()
        await writer.wait_closed()
        await front.stop()
        assert front.ledger.balanced()
        assert front.ledger.answered == 3
    asyncio.run(main())


def test_bad_request_line_gets_400():
    async def main():
        front = FrontDoor(scripted_router)
        await front.start()
        reader, writer = await asyncio.open_connection(*front.address)
        writer.write(b"garbage\r\n\r\n")
        await writer.drain()
        status_line = await reader.readline()
        assert b"400" in status_line
        writer.close()
        await writer.wait_closed()
        await front.stop()
        assert front.ledger.bad_request == 1
        assert front.ledger.balanced()
    asyncio.run(main())


def test_keep_alive_and_connection_close():
    async def main():
        front = FrontDoor(scripted_router)
        await front.start()
        reader, writer = await asyncio.open_connection(*front.address)
        # Two requests on one connection, then an explicit close.
        for _ in range(2):
            assert (await _request(reader, writer, "GET", "/ok"))[0] == 200
        status, _payload = await _request(
            reader, writer, "GET", "/ok",
            extra_headers="Connection: close\r\n")
        assert status == 200
        assert await reader.read() == b""  # server hung up
        writer.close()
        await writer.wait_closed()
        await front.stop()
        assert front.ledger.issued == 3
        assert front.ledger.balanced()
    asyncio.run(main())


def test_query_strings_are_stripped():
    async def main():
        front = FrontDoor(scripted_router)
        await front.start()
        reader, writer = await asyncio.open_connection(*front.address)
        status, _ = await _request(reader, writer, "GET", "/ok?page=2")
        assert status == 200
        writer.close()
        await writer.wait_closed()
        await front.stop()
    asyncio.run(main())


def test_abrupt_client_disconnect_leaves_ledger_balanced():
    async def main():
        front = FrontDoor(scripted_router)
        await front.start()
        reader, writer = await asyncio.open_connection(*front.address)
        assert (await _request(reader, writer, "GET", "/ok"))[0] == 200
        writer.close()  # vanish without Connection: close
        await asyncio.sleep(0.02)
        await front.stop()
        assert front.ledger.issued == 1
        assert front.ledger.balanced()
    asyncio.run(main())


def test_request_ledger_arithmetic():
    ledger = RequestLedger()
    ledger.issued = 10
    ledger.answered = 6
    ledger.rejected = 1
    ledger.shed = 1
    ledger.failed = 1
    assert ledger.terminal_total() == 9
    assert ledger.outstanding == 1
    assert not ledger.balanced()
    ledger.bad_request = 1
    assert ledger.balanced()
    assert ledger.as_dict()["outstanding"] == 0
