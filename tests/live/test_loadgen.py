"""Load-generator tests: schedule determinism and client-side accounting.

The open-loop contract is (a) arrival schedules are pure functions of
the seed, (b) every sent request lands in exactly one client-side
outcome bucket, and (c) the client's books and the server's ledger
agree end-to-end — including when the server sheds or errors.
"""

import asyncio
import random

import pytest

from repro.actors.message import Overloaded
from repro.live import (FrontDoor, LoadGenerator, flash_crowd_arrivals,
                        poisson_arrivals)


def test_poisson_arrivals_deterministic_and_bounded():
    a = poisson_arrivals(500.0, 2.0, random.Random(7))
    b = poisson_arrivals(500.0, 2.0, random.Random(7))
    assert a == b
    assert a == sorted(a)
    assert all(0.0 < t < 2.0 for t in a)
    # Poisson(500/s × 2s) ⇒ ~1000 arrivals; 5σ ≈ 160.
    assert 800 < len(a) < 1200
    assert poisson_arrivals(500.0, 2.0, random.Random(8)) != a
    with pytest.raises(ValueError):
        poisson_arrivals(0.0, 1.0, random.Random(1))


def test_flash_crowd_arrivals_deterministic_burst():
    a = flash_crowd_arrivals(200, 1.0, 0.25, random.Random(3))
    b = flash_crowd_arrivals(200, 1.0, 0.25, random.Random(3))
    assert a == b
    assert len(a) == 200
    assert all(1.0 <= t <= 1.25 + 1e-9 for t in a)


def _run_against(router, arrivals, factory, **kwargs):
    async def main():
        front = FrontDoor(router)
        await front.start()
        generator = LoadGenerator(front.host, front.port, arrivals,
                                  factory, **kwargs)
        report = await generator.run()
        await front.stop()
        return report, front.ledger
    return asyncio.run(main())


def test_every_outcome_bucketed_and_books_agree():
    async def router(method, path, body):
        if path == "/shed":
            return 200, {"r": Overloaded("shed")}
        if path == "/boom":
            raise RuntimeError("x")
        if path == "/missing":
            raise KeyError("x")
        return 200, {"ok": True}

    paths = ["/ok", "/ok", "/shed", "/boom", "/missing"]

    def factory(index, rng):
        return "GET", paths[index % len(paths)], b""

    n = 50
    arrivals = [i * 0.002 for i in range(n)]
    report, ledger = _run_against(router, arrivals, factory,
                                  connections=8, timeout_s=10.0)
    assert report.sent == n
    assert report.balanced()
    assert report.ok == 20
    assert report.shed == 10
    assert report.http_errors == 20  # 404s + 500s
    assert report.status_counts == {200: 20, 404: 10, 500: 10, 503: 10}
    # Server books match: everything the client sent was issued and
    # disposed server-side.
    assert ledger.issued == n
    assert ledger.balanced()
    assert ledger.answered == 20
    assert ledger.shed == 10
    assert ledger.failed == 10
    assert ledger.rejected == 10


def test_phase_split_uses_scheduled_arrival():
    async def router(method, path, body):
        return 200, {"ok": True}

    def factory(index, rng):
        return "GET", "/ok", b""

    arrivals = [i * 0.005 for i in range(40)]
    report, _ledger = _run_against(
        router, arrivals, factory,
        phase_of=lambda at_s: "early" if at_s < 0.1 else "late",
        connections=4)
    assert report.balanced()
    assert set(report.by_phase) == {"early", "late"}
    assert report.by_phase["early"].count == 20
    assert report.by_phase["late"].count == 20
    summary = report.phase_summary()
    assert summary["early"]["p99"] is not None
    assert report.as_dict()["phases"] == summary


def test_dead_server_counts_transport_errors():
    async def main():
        # Bind a port, then close it before the run so connects fail.
        front = FrontDoor(lambda m, p, b: None)
        await front.start()
        host, port = front.address
        await front.stop()
        generator = LoadGenerator(host, port, [0.0, 0.005, 0.01],
                                  lambda i, rng: ("GET", "/", b""),
                                  connections=2, timeout_s=2.0)
        return await generator.run()
    report = asyncio.run(main())
    assert report.sent == 3
    assert report.transport_errors == 3
    assert report.balanced()
    assert report.ok == 0
