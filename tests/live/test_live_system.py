"""Unit tests for the asyncio actor runtime.

The live runtime's contract mirrors the simulator's: one message at a
time per actor, bounded-mailbox shedding for client traffic only, and a
two-phase migration that loses no messages and preserves per-actor
order.  No pytest-asyncio here — each test owns its loop via
``asyncio.run`` (the runtime requires a running loop, nothing more).
"""

import asyncio

import pytest

from repro.actors.message import Overloaded
from repro.live import LiveActor, LiveActorSystem
from repro.live.system import ActorGone


class Echo(LiveActor):
    state_size_mb = 1.0

    async def ping(self, value):
        await self.compute(0.1)
        return ("pong", value)

    def poke(self):
        return "ok"


class Recorder(LiveActor):
    """Appends every payload it sees; order is the whole point."""

    state_size_mb = 0.2
    seen: tuple = ()

    def __init__(self):
        super().__init__()
        self.log = []

    async def note(self, value):
        self.log.append(value)

    async def slow_note(self, value):
        await asyncio.sleep(0.005)
        self.log.append(value)


class Boom(LiveActor):
    async def explode(self):
        raise RuntimeError("boom")


def _system(servers=2, **kwargs):
    system = LiveActorSystem(transfer_ms_per_mb=1.0, **kwargs)
    for _ in range(servers):
        system.add_server()
    return system


def test_create_call_and_tell_round_trip():
    async def main():
        system = _system()
        ref = system.create_actor(Echo)
        assert await system.client_call(ref, "ping", 7) == ("pong", 7)
        assert await system.client_call(ref, "poke") == "ok"

        sink = system.create_actor(Recorder)
        relay = system.create_actor(Echo)
        # actor→actor tell via the instance API
        instance = system.actor_instance(relay)
        for i in range(5):
            instance.tell(sink, "note", i)
        assert await system.quiesce(1.0)
        assert system.actor_instance(sink).log == [0, 1, 2, 3, 4]
        assert system.messages_delivered == 2 + 5
        await system.shutdown()
    asyncio.run(main())


def test_least_loaded_placement_and_explicit_server():
    async def main():
        system = _system(servers=2)
        refs = [system.create_actor(Echo) for _ in range(4)]
        counts = sorted(len(system.actors_on(s)) for s in system.servers)
        assert counts == [2, 2]
        pinned_server = system.servers[1]
        ref = system.create_actor(Echo, server=pinned_server)
        assert system.server_of(ref) is pinned_server
        del refs
        await system.shutdown()
    asyncio.run(main())


def test_handler_exception_fails_reply_and_counts():
    async def main():
        system = _system(servers=1)
        ref = system.create_actor(Boom)
        with pytest.raises(RuntimeError, match="boom"):
            await system.client_call(ref, "explode")
        assert system.handler_errors == 1
        # The dispatch loop survives the error.
        await system.shutdown()
    asyncio.run(main())


def test_missing_actor_raises_actor_gone():
    async def main():
        system = _system(servers=1)
        ref = system.create_actor(Echo)
        system.destroy_actor(ref)
        with pytest.raises(ActorGone):
            await system.client_call(ref, "ping", 1)
        await system.shutdown()
    asyncio.run(main())


def test_bounded_mailbox_sheds_client_traffic_only():
    async def main():
        system = _system(servers=1, mailbox_capacity=2)
        ref = system.create_actor(Recorder)
        # Synchronous burst: nothing dispatched until we await, so the
        # mailbox fills and the overflow NACKs.
        futures = [system.client_call(ref, "note", i) for i in range(6)]
        results = await asyncio.gather(*futures)
        shed = [r for r in results if isinstance(r, Overloaded)]
        assert len(shed) == 4 and all(r.reason == "shed" for r in shed)
        assert system.messages_shed == 4
        # Actor→actor tells bypass the cap entirely.
        other = system.create_actor(Echo)
        instance = system.actor_instance(other)
        for i in range(10):
            instance.tell(ref, "note", 100 + i)
        assert await system.quiesce(1.0)
        assert system.messages_shed == 4
        log = system.actor_instance(ref).log
        assert [v for v in log if v >= 100] == list(range(100, 110))
        await system.shutdown()
    asyncio.run(main())


def test_migration_preserves_order_and_loses_nothing():
    async def main():
        system = _system(servers=2)
        source = system.servers[0]
        target = system.servers[1]
        ref = system.create_actor(Recorder, server=source)

        async def feed():
            for i in range(40):
                fut = system.client_call(ref, "slow_note", i)
                await asyncio.sleep(0.001)
                del fut

        feeder = asyncio.ensure_future(feed())
        await asyncio.sleep(0.01)  # mid-stream
        moved = await system.migrate_actor(ref, target)
        assert moved is True
        await feeder
        assert await system.quiesce(2.0)

        record = system.directory.lookup(ref.actor_id)
        assert record.server is target
        assert record.migrations == 1
        assert not record.migrating
        assert system.migrations_completed == 1
        # Every message arrived, exactly once, in send order.
        assert system.actor_instance(ref).log == list(range(40))
        # Memory ledger moved with the actor.
        assert source.memory_used_mb == pytest.approx(0.0)
        assert target.memory_used_mb == pytest.approx(Recorder.state_size_mb)
        await system.shutdown()
    asyncio.run(main())


def test_migration_refusals():
    async def main():
        system = _system(servers=2)
        ref = system.create_actor(Echo, server=system.servers[0])
        # No-op move to the same server.
        assert not await system.migrate_actor(ref, system.servers[0])
        # Pinned: refused without force, allowed with.
        system.pin(ref, True)
        assert not await system.migrate_actor(ref, system.servers[1])
        assert await system.migrate_actor(ref, system.servers[1],
                                          force=True)
        system.pin(ref, False)
        # Target not running.
        system.servers[0].shutdown()
        assert not await system.migrate_actor(ref, system.servers[0])
        assert system.migrations_refused == 3
        assert system.migrations_completed == 1
        await system.shutdown()
    asyncio.run(main())


def test_concurrent_migration_of_same_actor_is_refused():
    async def main():
        system = _system(servers=3)
        ref = system.create_actor(Echo, server=system.servers[0])
        first = asyncio.ensure_future(
            system.migrate_actor(ref, system.servers[1]))
        await asyncio.sleep(0)  # let it reach the transfer sleep
        second = await system.migrate_actor(ref, system.servers[2])
        assert second is False
        assert await first is True
        assert system.server_of(ref) is system.servers[1]
        await system.shutdown()
    asyncio.run(main())


def test_actor_calls_keep_working_across_migration():
    async def main():
        system = _system(servers=2)
        ref = system.create_actor(Echo, server=system.servers[0])

        async def chatter():
            results = []
            for i in range(30):
                results.append(await system.client_call(ref, "ping", i))
            return results

        task = asyncio.ensure_future(chatter())
        await asyncio.sleep(0.005)
        assert await system.migrate_actor(ref, system.servers[1])
        results = await task
        assert results == [("pong", i) for i in range(30)]
        await system.shutdown()
    asyncio.run(main())


def test_compute_charges_hosting_server():
    async def main():
        system = _system(servers=1)
        server = system.servers[0]
        ref = system.create_actor(Echo)
        await system.client_call(ref, "ping", 1)
        # ping computes 0.1 ms; the meter saw exactly that charge.
        assert server.cpu_meter.total(10_000.0) == pytest.approx(0.1)
        await system.shutdown()
    asyncio.run(main())
