"""Tombstone spawn-argument isolation across crash/resurrect cycles.

Regression: ``create_actor`` deep-copied ``spawn_kwargs`` but stored
``spawn_args`` by reference, so an actor mutating a mutable positional
constructor argument in place silently rewrote its own tombstone — a
later resurrection then resumed from the mutated state instead of the
recorded spawn-time state (and the same aliasing chained across
generations through ``resurrect_actor``).
"""

from repro.actors import Actor, ActorSystem
from repro.cluster import Provisioner
from repro.sim import Simulator


class Holder(Actor):
    def __init__(self, items, tags=None):
        self.items = items
        self.tags = tags if tags is not None else {}

    def stash(self, value):
        yield self.compute(0.1)
        self.items.append(value)
        self.tags[value] = True
        return list(self.items)


def make_system(servers=2):
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    for _ in range(servers):
        prov.boot_server(immediate=True)
    sim.run()
    return sim, ActorSystem(sim, prov)


def crash_and_resurrect(sim, system, ref):
    server = system.server_of(ref)
    tombstones = {record.ref.actor_id: record
                  for record in system.directory.records()
                  if record.server is server}
    system.crash_server(server)
    assert system.resurrect_actor(tombstones[ref.actor_id]) is ref
    sim.run()
    return system.directory.lookup(ref.actor_id)


def test_mutating_positional_arg_does_not_rewrite_tombstone():
    sim, system = make_system()
    seed_items = ["a"]
    ref = system.create_actor(Holder, seed_items,
                              server=system.provisioner.servers[0])
    record = system.directory.lookup(ref.actor_id)
    # The instance intentionally shares the caller's object...
    assert record.instance.items is seed_items
    # ...but the record's recorded args are an independent deep copy,
    # for positional args exactly like for keyword args.
    assert record.spawn_args[0] == ["a"]
    assert record.spawn_args[0] is not seed_items

    record.instance.items.append("mutated")
    revived = crash_and_resurrect(sim, system, ref)
    assert revived.instance.items == ["a"]


def test_isolation_chains_across_generations():
    sim, system = make_system(servers=4)   # one host per generation
    ref = system.create_actor(Holder, ["a"], tags={"a": True},
                              server=system.provisioner.servers[0])
    for generation in range(3):
        record = system.directory.lookup(ref.actor_id)
        # Every generation boots from pristine spawn-time state...
        assert record.instance.items == ["a"]
        assert record.instance.tags == {"a": True}
        # ...mutates it in place...
        record.instance.items.append(f"gen{generation}")
        record.instance.tags[generation] = True
        # ...and the next resurrection must not inherit the mutation
        # (nor may its record alias the instance it just built from).
        assert record.spawn_args[0] is not record.instance.items
        assert record.spawn_kwargs["tags"] is not record.instance.tags
        crash_and_resurrect(sim, system, ref)
