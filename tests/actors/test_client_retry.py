"""Client timeout, retry/backoff, and dead-letter behaviour."""

import pytest

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.cluster import AvailabilityMeter
from repro.sim import spawn


class Echo(Actor):
    def ping(self, value):
        yield self.compute(1.0)
        return value


class Slow(Actor):
    def ping(self, value):
        yield self.sleep(10_000.0)
        return value


def test_client_parameter_validation():
    bed = build_cluster(1)
    with pytest.raises(ValueError):
        Client(bed.system, timeout_ms=0.0)
    with pytest.raises(ValueError):
        Client(bed.system, max_retries=-1)
    with pytest.raises(ValueError):
        Client(bed.system, backoff_base_ms=200.0, backoff_cap_ms=100.0)


def test_reliable_call_succeeds_first_try():
    bed = build_cluster(2)
    ref = bed.system.create_actor(Echo, server=bed.servers[1])
    meter = AvailabilityMeter(bed.sim)
    client = Client(bed.system, timeout_ms=1_000.0, max_retries=3,
                    meter=meter)
    out = []

    def body():
        value = yield from client.reliable_call(ref, "ping", 7)
        out.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=5_000.0)
    assert out == [7]
    assert client.completed == 1 and client.retries_used == 0
    assert meter.totals == {"success": 1, "failure": 0, "timeout": 0,
                            "rejected": 0, "shed": 0}
    assert len(client.latencies) == 1


def test_timeout_outcome_and_dead_letter():
    bed = build_cluster(2)
    ref = bed.system.create_actor(Slow, server=bed.servers[1])
    meter = AvailabilityMeter(bed.sim)
    client = Client(bed.system, timeout_ms=100.0, max_retries=2,
                    backoff_base_ms=50.0, backoff_cap_ms=400.0, meter=meter)
    out = []

    def body():
        value = yield from client.reliable_call(ref, "ping", 1)
        out.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    assert out == [None]
    assert client.failed == 1
    assert client.retries_used == 2
    assert meter.totals["timeout"] == 3
    [letter] = client.dead_letters
    assert letter.attempts == 3
    assert letter.last_outcome == "timeout"
    assert letter.function == "ping"


def test_backoff_doubles_and_caps():
    # 3 attempts timing: t0=0, timeout@100, backoff 50 -> attempt@150,
    # timeout@250, backoff 100 (doubled) -> attempt@350, timeout@450.
    bed = build_cluster(2)
    bed.system.crash_server(bed.servers[1])
    dead = bed.system.create_actor(Slow, server=bed.servers[0])
    bed.system.crash_server(bed.servers[0])
    client = Client(bed.system, timeout_ms=100.0, max_retries=2,
                    backoff_base_ms=50.0, backoff_cap_ms=60.0)
    finished = []

    def body():
        yield from client.reliable_call(dead, "ping", 1)
        finished.append(bed.sim.now)

    spawn(bed.sim, body())
    bed.run(until_ms=5_000.0)
    # Calls to a destroyed actor fail instantly (None reply), so elapsed
    # time is just the backoffs: 50 then min(100, cap=60).
    assert finished == [pytest.approx(110.0, abs=1.0)]


def test_failure_outcome_for_dead_actor_is_retried():
    bed = build_cluster(2)
    ref = bed.system.create_actor(Echo, server=bed.servers[0])
    bed.system.crash_server(bed.servers[0])
    meter = AvailabilityMeter(bed.sim)
    client = Client(bed.system, timeout_ms=500.0, max_retries=1, meter=meter)
    out = []

    def body():
        value = yield from client.reliable_call(ref, "ping", 1)
        out.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=10_000.0)
    assert out == [None]
    assert meter.totals["failure"] == 2
    assert client.dead_letters[0].last_outcome == "failure"


def test_retry_bridges_actor_resurrection():
    # The actor dies, the caller keeps retrying, the elasticity runtime
    # resurrects it, and the retry then succeeds: availability dips, then
    # recovers — the core claim of the chaos benchmarks in miniature.
    bed = build_cluster(2)
    ref = bed.system.create_actor(Echo, server=bed.servers[0])
    tombstone = bed.system.directory.lookup(ref.actor_id)
    bed.system.crash_server(bed.servers[0])
    bed.sim.schedule(700.0, bed.system.resurrect_actor, tombstone)
    meter = AvailabilityMeter(bed.sim)
    client = Client(bed.system, timeout_ms=200.0, max_retries=5,
                    backoff_base_ms=200.0, backoff_cap_ms=800.0, meter=meter)
    out = []

    def body():
        value = yield from client.reliable_call(ref, "ping", 42)
        out.append(value)

    spawn(bed.sim, body())
    bed.run(until_ms=20_000.0)
    assert out == [42]
    assert client.retries_used >= 1
    assert meter.totals["failure"] >= 1
    assert meter.totals["success"] == 1
    assert client.dead_letters == []


def test_jitter_frac_validated():
    bed = build_cluster(1)
    with pytest.raises(ValueError):
        Client(bed.system, jitter_frac=1.5)
    with pytest.raises(ValueError):
        Client(bed.system, jitter_frac=-0.1)
    with pytest.raises(ValueError):
        Client(bed.system, max_dead_letters=-1)


def _storm_finish_times(jitter_frac, seed=23):
    """Six identical clients give up on a dead actor; when did each
    finish its full retry sequence?"""
    bed = build_cluster(1, seed=seed)
    ref = bed.system.create_actor(Echo)
    bed.system.crash_server(bed.servers[0])
    finished = {}
    for i in range(6):
        client = Client(bed.system, name=f"c{i}", timeout_ms=100.0,
                        max_retries=4, backoff_base_ms=100.0,
                        backoff_cap_ms=2_000.0, jitter_frac=jitter_frac)

        def body(client=client):
            yield from client.reliable_call(ref, "ping", 1)
            finished[client.name] = bed.sim.now

        spawn(bed.sim, body())
    bed.run(until_ms=30_000.0)
    assert len(finished) == 6
    return finished


def test_jitter_desynchronizes_retry_storms():
    # Without jitter every client that failed together retries together:
    # the synchronized retry storm re-hits the server as one spike.
    lockstep = _storm_finish_times(0.0)
    assert len(set(lockstep.values())) == 1
    # With jitter the same six clients spread out...
    jittered = _storm_finish_times(0.5)
    assert len(set(jittered.values())) == 6
    # ...while every delay stays within [backoff * (1 - f), backoff],
    # so nobody finishes *later* than the lockstep schedule.
    ceiling = next(iter(lockstep.values()))
    total_backoff = 100.0 + 200.0 + 400.0 + 800.0  # 4 retries, doubled
    for when in jittered.values():
        assert when <= ceiling
        assert when >= ceiling - 0.5 * total_backoff
    # Seeded: the spread itself replays bit-identically.
    assert _storm_finish_times(0.5) == jittered


def test_dead_letter_ring_is_bounded():
    bed = build_cluster(1)
    ref = bed.system.create_actor(Echo)
    bed.system.crash_server(bed.servers[0])
    client = Client(bed.system, max_retries=0, max_dead_letters=2)
    times = []

    def body():
        for _ in range(5):
            yield from client.reliable_call(ref, "ping", 1)
            times.append(bed.sim.now)

    spawn(bed.sim, body())
    bed.run(until_ms=10_000.0)
    # Oldest entries evicted, total preserved for the CLI summary.
    assert len(client.dead_letters) == 2
    assert client.dead_letters_dropped == 3
    assert client.dead_letters_total == 5
    assert [letter.time_ms for letter in client.dead_letters] == times[-2:]


def test_plain_call_and_timed_call_unchanged():
    bed = build_cluster(1)
    ref = bed.system.create_actor(Echo)
    client = Client(bed.system)
    out = []

    def body():
        result, latency = yield from client.timed_call(ref, "ping", 3)
        out.append((result, latency))

    spawn(bed.sim, body())
    bed.run(until_ms=5_000.0)
    assert out[0][0] == 3
    assert out[0][1] > 0.0
    assert client.completed == 1
