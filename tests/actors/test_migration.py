"""Unit tests for live actor migration semantics."""

import pytest

from repro.actors import Actor, ActorSystem, Client, RuntimeHooks
from repro.cluster import Provisioner
from repro.sim import Simulator, Timeout, spawn


class Worker(Actor):
    state_size_mb = 2.0

    def __init__(self):
        self.processed = 0
        self.moves = []

    def work(self, duration):
        yield self.compute(duration)
        self.processed += 1
        return self.processed

    def on_migrated(self, old_server, new_server):
        self.moves.append((old_server.name, new_server.name))


def make_system(servers=2):
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    for _ in range(servers):
        prov.boot_server(immediate=True)
    sim.run()
    return sim, ActorSystem(sim, prov)


def test_migration_moves_actor_and_memory():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    done = system.migrate_actor(ref, dst)
    sim.run()
    assert done.value is True
    assert system.server_of(ref) is dst
    assert src.memory_used_mb == 0.0
    assert dst.memory_used_mb == Worker.state_size_mb
    record = system.directory.lookup(ref.actor_id)
    assert record.migrations == 1
    assert record.last_placed_at > 0.0


def test_migration_takes_transfer_time():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    done = system.migrate_actor(ref, dst)
    sim.run()
    # 2 MB over 10 Gbps plus one RTT: > 1 ms of virtual time.
    assert sim.now >= 1.0


def test_on_migrated_hook_called():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    system.migrate_actor(ref, dst)
    sim.run()
    instance = system.actor_instance(ref)
    assert instance.moves == [(src.name, dst.name)]


def test_migration_waits_for_inflight_handler():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    client = Client(system)
    results = []

    def driver():
        reply = client.call(ref, "work", 50.0)
        yield Timeout(sim, 1.0)  # the handler is now running
        done = system.migrate_actor(ref, dst)
        value = yield reply
        results.append(("reply", sim.now, value))
        yield done
        results.append(("migrated", sim.now))

    spawn(sim, driver())
    sim.run()
    kinds = [r[0] for r in results]
    assert kinds == ["reply", "migrated"]
    # The reply completed on the source before the move finished.
    assert results[0][1] <= results[1][1]


def test_messages_during_migration_are_processed_after():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    client = Client(system)
    completions = []

    def sender():
        system.migrate_actor(ref, dst)
        replies = [client.call(ref, "work", 1.0) for _ in range(3)]
        for reply in replies:
            value = yield reply
            completions.append(value)

    spawn(sim, sender())
    sim.run()
    assert completions == [1, 2, 3]  # nothing lost, order kept
    assert system.server_of(ref) is dst


def test_concurrent_migration_requests_second_skipped():
    sim, system = make_system(3)
    servers = system.provisioner.servers
    ref = system.create_actor(Worker, server=servers[0])
    first = system.migrate_actor(ref, servers[1])
    second = system.migrate_actor(ref, servers[2])
    sim.run()
    assert first.value is True
    assert second.value is False
    assert system.server_of(ref) is servers[1]


def test_migration_to_same_server_skipped():
    sim, system = make_system()
    src = system.provisioner.servers[0]
    ref = system.create_actor(Worker, server=src)
    done = system.migrate_actor(ref, src)
    sim.run()
    assert done.value is False


def test_migration_to_dead_server_skipped():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    dst.shutdown()
    done = system.migrate_actor(ref, dst)
    sim.run()
    assert done.value is False


def test_inflight_message_is_forwarded_after_move():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    client = Client(system)
    results = []

    class ForwardSpy(RuntimeHooks):
        def __init__(self):
            self.forwarded = 0

        def on_message_delivered(self, record, message):
            if message.forwards:
                self.forwarded += 1

    spy = ForwardSpy()
    system.add_hooks(spy)

    def driver():
        # Fire the call, then migrate immediately so the message is in
        # flight toward the old server when the actor moves.
        reply = client.call(ref, "work", 1.0)
        done = system.migrate_actor(ref, dst)
        value = yield reply
        results.append(value)
        yield done

    spawn(sim, driver())
    sim.run()
    assert results == [1]


# -- two-phase protocol under partitions -------------------------------


class AbortSpy(RuntimeHooks):
    def __init__(self):
        self.aborts = []

    def on_migration_aborted(self, record, source, target, reason):
        self.aborts.append((record.ref.type_name, source.name,
                            target.name, reason))


def test_prepare_timeout_rolls_back_without_transfer():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    spy = AbortSpy()
    system.add_hooks(spy)
    system.fabric.partition({src.server_id})
    before = dst.net_meter.lifetime_total
    done = system.migrate_actor(ref, dst)
    sim.run()
    assert done.value is False
    assert system.server_of(ref) is src
    assert system.migrations_rolled_back == 1
    assert spy.aborts == [("Worker", src.name, dst.name,
                           "prepare-timeout")]
    # Rolled back in prepare: no state bytes ever crossed the fabric.
    assert dst.net_meter.lifetime_total == before
    assert src.memory_used_mb == Worker.state_size_mb
    assert dst.memory_used_mb == 0.0
    record = system.directory.lookup(ref.actor_id)
    assert not record.migrating


def test_prepare_retries_after_partition_heals_in_time():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    token = system.fabric.partition({src.server_id})
    done = system.migrate_actor(ref, dst)
    # Heal inside the phase timeout: the held prepare goes through.
    sim.schedule(system.migration_phase_timeout_ms / 2,
                 system.fabric.heal_partition, token)
    sim.run()
    assert done.value is True
    assert system.server_of(ref) is dst
    assert system.migrations_rolled_back == 0


def test_partition_during_transfer_rolls_back_commit():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    spy = AbortSpy()
    system.add_hooks(spy)
    done = system.migrate_actor(ref, dst)
    # The 2 MB transfer takes ~2.6 ms; cut the link mid-flight and keep
    # it cut past the commit's phase timeout.
    sim.schedule(1.0, system.fabric.partition, {src.server_id})
    sim.run()
    assert done.value is False
    assert system.server_of(ref) is src
    assert spy.aborts == [("Worker", src.name, dst.name,
                           "commit-timeout")]
    # The prepared copy was logical only: nothing leaked on the target.
    assert src.memory_used_mb == Worker.state_size_mb
    assert dst.memory_used_mb == 0.0


def test_commit_lands_late_when_partition_heals_in_time():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    done = system.migrate_actor(ref, dst)
    tokens = []
    sim.schedule(1.0, lambda: tokens.append(
        system.fabric.partition({src.server_id})))
    sim.schedule(100.0,
                 lambda: system.fabric.heal_partition(tokens[0]))
    sim.run()
    assert done.value is True
    assert system.server_of(ref) is dst
    assert system.migrations_rolled_back == 0
    assert src.memory_used_mb == 0.0
    assert dst.memory_used_mb == Worker.state_size_mb


def test_rolled_back_actor_keeps_serving():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    ref = system.create_actor(Worker, server=src)
    system.fabric.partition({src.server_id})
    client = Client(system)
    results = []

    def driver():
        done = system.migrate_actor(ref, dst)
        yield done
        # Post-rollback the actor must still process messages in place
        # (the client is on the management network, never partitioned).
        value = yield client.call(ref, "work", 1.0)
        results.append(value)

    spawn(sim, driver())
    sim.run()
    assert results == [1]
    assert system.server_of(ref) is src


def test_migration_hooks_notified():
    sim, system = make_system()
    src, dst = system.provisioner.servers
    events = []

    class Spy(RuntimeHooks):
        def on_actor_migrated(self, record, old_server, new_server):
            events.append((record.ref.type_name, old_server.name,
                           new_server.name))

    system.add_hooks(Spy())
    ref = system.create_actor(Worker, server=src)
    system.migrate_actor(ref, dst)
    sim.run()
    assert events == [("Worker", src.name, dst.name)]
