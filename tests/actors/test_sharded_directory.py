"""Properties of the consistent-hash-sharded directory.

Three claims make the sharded directory a safe replacement for the flat
authoritative map, and each gets a property here:

1. **Exactly-one-shard ownership** — after any interleaving of
   register/unregister, every live record lives in exactly one shard
   map, that map agrees with the ring owner, and the shard union equals
   the authoritative map (``coverage_errors`` stays empty).
2. **Bounded remapping** — adding or removing a shard moves only the
   keys whose owning arc changed: ~``K/N`` of the keyspace, never a
   full reshuffle, and never a key whose owner did not change.
3. **Epoch-fenced caches** — a per-LEM cache can never serve an entry
   filled before the latest migration commit of that actor: a commit
   fences every cache, forcing the next lookup down the miss path.

The properties are hypothesis-driven when hypothesis is installed
(local dev); the deterministic unit tests below them always run.
"""

import pytest

from repro.actors.directory import ActorRecord
from repro.actors.refs import ActorRef
from repro.actors.sharded_directory import HashRing, ShardedDirectory


def _record(actor_id):
    return ActorRecord(instance=None, ref=ActorRef(actor_id, "T"),
                       server=None, created_at=0.0)


# ---------------------------------------------------------------------------
# HashRing units
# ---------------------------------------------------------------------------

def test_ring_owner_is_deterministic_and_total():
    ring = HashRing(virtual_nodes=8)
    for shard in range(4):
        ring.add_shard(shard)
    owners = {key: ring.owner(key) for key in range(1000)}
    again = HashRing(virtual_nodes=8)
    for shard in range(4):
        again.add_shard(shard)
    assert owners == {key: again.owner(key) for key in range(1000)}
    assert set(owners.values()) <= {0, 1, 2, 3}
    # Virtual nodes spread load: every shard owns something.
    assert set(owners.values()) == {0, 1, 2, 3}


def test_ring_rejects_duplicates_and_unknown_removals():
    ring = HashRing()
    ring.add_shard(0)
    with pytest.raises(ValueError):
        ring.add_shard(0)
    with pytest.raises(ValueError):
        ring.remove_shard(7)
    with pytest.raises(ValueError):
        HashRing(virtual_nodes=0)


def test_empty_ring_refuses_lookup():
    with pytest.raises(ValueError):
        HashRing().owner(1)


def test_directory_refuses_removing_last_shard():
    directory = ShardedDirectory(shards=1)
    with pytest.raises(ValueError):
        directory.remove_shard(0)


# ---------------------------------------------------------------------------
# Deterministic coverage / remapping / fencing checks
# ---------------------------------------------------------------------------

def test_register_unregister_keeps_exact_coverage():
    directory = ShardedDirectory(shards=3, virtual_nodes=8)
    for actor_id in range(1, 201):
        directory.register(_record(actor_id))
    assert directory.coverage_errors() == []
    for actor_id in range(1, 201, 3):
        directory.unregister(actor_id)
    assert directory.coverage_errors() == []
    live = {record.ref.actor_id for record in directory.records()}
    sharded = set()
    for shard_id in directory.shard_ids():
        owned = set(directory.shard_records(shard_id))
        assert sharded.isdisjoint(owned)
        sharded |= owned
    assert sharded == live


def test_add_shard_moves_only_keys_whose_owner_changed():
    directory = ShardedDirectory(shards=4, virtual_nodes=16)
    keys = list(range(1, 1001))
    for actor_id in keys:
        directory.register(_record(actor_id))
    before = {actor_id: directory.shard_of(actor_id) for actor_id in keys}
    moved = directory.add_shard(4)
    after = {actor_id: directory.shard_of(actor_id) for actor_id in keys}
    changed = [actor_id for actor_id in keys
               if before[actor_id] != after[actor_id]]
    assert moved == len(changed)
    # Every relocated key now belongs to the new shard (a key never hops
    # between two surviving shards when one is *added*).
    assert all(after[actor_id] == 4 for actor_id in changed)
    # Bounded: ~K/N of the keyspace, comfortably below a reshuffle.
    assert 0 < len(changed) < len(keys) // 2
    assert directory.coverage_errors() == []


def test_remove_shard_rehomes_only_its_keys():
    directory = ShardedDirectory(shards=5, virtual_nodes=16)
    keys = list(range(1, 1001))
    for actor_id in keys:
        directory.register(_record(actor_id))
    victim_keys = set(directory.shard_records(2))
    before = {actor_id: directory.shard_of(actor_id) for actor_id in keys}
    moved = directory.remove_shard(2)
    after = {actor_id: directory.shard_of(actor_id) for actor_id in keys}
    changed = {actor_id for actor_id in keys
               if before[actor_id] != after[actor_id]}
    assert moved == len(changed)
    assert changed == victim_keys  # survivors' keys never move
    assert 2 not in directory.shard_ids()
    assert directory.coverage_errors() == []
    assert all(directory.try_lookup(actor_id) is not None
               for actor_id in keys)


def test_cache_is_fenced_by_commit_epoch():
    directory = ShardedDirectory(shards=2, virtual_nodes=8)
    record = _record(7)
    directory.register(record)
    # Fill two LEM caches, then verify a hit is served from each.
    assert directory.cached_lookup(101, 7) is record
    assert directory.cached_lookup(102, 7) is record
    hits_before = directory.cache_hits
    assert directory.cached_lookup(101, 7) is record
    assert directory.cache_hits == hits_before + 1
    # A migration commit fences *every* cache: both go down the miss
    # path and re-fill at the new epoch.
    directory.note_commit(7, epoch=3)
    misses_before = directory.cache_misses
    assert directory.cached_lookup(101, 7) is record
    assert directory.cached_lookup(102, 7) is record
    assert directory.cache_misses == misses_before + 2
    assert directory.cache_invalidations >= 2
    # Refilled entries are hits again until the next commit.
    hits_before = directory.cache_hits
    assert directory.cached_lookup(102, 7) is record
    assert directory.cache_hits == hits_before + 1


def test_cache_never_resurrects_unregistered_actor():
    directory = ShardedDirectory(shards=2)
    directory.register(_record(9))
    assert directory.cached_lookup(1, 9) is not None
    directory.unregister(9)
    assert directory.cached_lookup(1, 9) is None
    assert directory.try_lookup(9) is None


# ---------------------------------------------------------------------------
# Shard hosting and crash handoff
# ---------------------------------------------------------------------------


class _FakeServer:
    def __init__(self, server_id):
        self.server_id = server_id


def test_bind_hosts_round_robins_shards_over_servers():
    directory = ShardedDirectory(shards=3, virtual_nodes=8)
    directory.bind_hosts([_FakeServer(10), _FakeServer(11)])
    assert directory.shard_host(0) == 10
    assert directory.shard_host(1) == 11
    assert directory.shard_host(2) == 10
    # Rebinding is idempotent: a later call (e.g. after a scale-out)
    # never moves an already-bound shard.
    directory.bind_hosts([_FakeServer(99)])
    assert [directory.shard_host(s) for s in (0, 1, 2)] == [10, 11, 10]
    # An empty fleet is a no-op, not an error.
    directory.bind_hosts([])
    assert directory.shard_host(0) == 10


def test_host_crash_rehomes_its_shards_and_drops_its_cache():
    directory = ShardedDirectory(shards=3, virtual_nodes=8)
    directory.bind_hosts([_FakeServer(10), _FakeServer(11)])
    keys = list(range(1, 301))
    for actor_id in keys:
        directory.register(_record(actor_id))
    # Warm server 10's lookup cache so the crash has something to drop.
    directory.cached_lookup(10, keys[0])
    assert 10 in directory._caches
    victim_keys = {a for a in keys if directory.shard_of(a) in (0, 2)}

    shards_removed, records_moved = directory.note_host_crashed(10)

    assert shards_removed == 2          # shards 0 and 2 left the ring
    # Shards are removed one at a time, so a key that hops 0 -> 2 -> 1
    # is counted per hop; every victim key moved at least once.
    assert records_moved >= len(victim_keys)
    assert directory.shards_lost == 2
    assert directory.shard_ids() == [1]
    assert directory.shard_host(1) == 11
    assert 10 not in directory._caches
    assert directory.coverage_errors() == []
    assert all(directory.try_lookup(a) is not None for a in keys)
    # Crashing a host with nothing bound is a quiet no-op.
    assert directory.note_host_crashed(12) == (0, 0)


def test_host_crash_never_removes_the_last_shard():
    directory = ShardedDirectory(shards=2, virtual_nodes=8)
    directory.bind_hosts([_FakeServer(10), _FakeServer(11)])
    for actor_id in range(1, 51):
        directory.register(_record(actor_id))
    directory.note_host_crashed(10)
    assert directory.shard_ids() == [1]
    # Shard 1's host goes too: the sole shard survives, merely unhosted.
    shards_removed, records_moved = directory.note_host_crashed(11)
    assert (shards_removed, records_moved) == (0, 0)
    assert directory.shard_ids() == [1]
    assert directory.shard_host(1) is None
    assert directory.coverage_errors() == []
    assert all(directory.try_lookup(a) is not None for a in range(1, 51))


# ---------------------------------------------------------------------------
# Hypothesis properties
# ---------------------------------------------------------------------------

def _hypothesis():
    hypothesis = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")
    return hypothesis, st


def test_property_exactly_one_shard_ownership():
    hypothesis, st = _hypothesis()

    @hypothesis.settings(max_examples=50, deadline=None)
    @hypothesis.given(
        shards=st.integers(min_value=1, max_value=8),
        virtual_nodes=st.integers(min_value=1, max_value=32),
        ops=st.lists(st.tuples(st.booleans(),
                               st.integers(min_value=1, max_value=64)),
                     max_size=120))
    def check(shards, virtual_nodes, ops):
        directory = ShardedDirectory(shards=shards,
                                     virtual_nodes=virtual_nodes)
        live = set()
        for register, actor_id in ops:
            if register and actor_id not in live:
                directory.register(_record(actor_id))
                live.add(actor_id)
            elif not register:
                directory.unregister(actor_id)
                live.discard(actor_id)
        assert directory.coverage_errors() == []
        assert {r.ref.actor_id for r in directory.records()} == live
        for actor_id in live:
            assert directory.try_lookup(actor_id) is not None

    check()


def test_property_bounded_remapping():
    hypothesis, st = _hypothesis()

    @hypothesis.settings(max_examples=25, deadline=None)
    @hypothesis.given(
        shards=st.integers(min_value=2, max_value=6),
        grow=st.booleans(),
        seed_keys=st.sets(st.integers(min_value=1, max_value=10_000),
                          min_size=50, max_size=300))
    def check(shards, grow, seed_keys):
        directory = ShardedDirectory(shards=shards, virtual_nodes=16)
        for actor_id in seed_keys:
            directory.register(_record(actor_id))
        before = {a: directory.shard_of(a) for a in seed_keys}
        if grow:
            moved = directory.add_shard(shards)
        else:
            moved = directory.remove_shard(shards - 1)
        after = {a: directory.shard_of(a) for a in seed_keys}
        changed = {a for a in seed_keys if before[a] != after[a]}
        assert moved == len(changed)
        if grow:
            # Only keys captured by the new shard's arcs moved.
            assert all(after[a] == shards for a in changed)
        else:
            # Only the departing shard's keys moved.
            assert all(before[a] == shards - 1 for a in changed)
            assert all(after[a] != shards - 1 for a in seed_keys)
        assert directory.coverage_errors() == []

    check()


def test_property_cache_never_stale_past_commit():
    hypothesis, st = _hypothesis()

    @hypothesis.settings(max_examples=50, deadline=None)
    @hypothesis.given(
        ops=st.lists(st.tuples(st.sampled_from(["lookup", "commit"]),
                               st.integers(min_value=1, max_value=4),
                               st.integers(min_value=1, max_value=8)),
                     min_size=1, max_size=100))
    def check(ops):
        directory = ShardedDirectory(shards=3, virtual_nodes=8)
        for actor_id in range(1, 9):
            directory.register(_record(actor_id))
        #: Shadow model: epoch each cache last observed per actor.
        observed = {}
        current = {actor_id: 0 for actor_id in range(1, 9)}
        for op, cache_id, actor_id in ops:
            if op == "commit":
                directory.note_commit(actor_id)
                current[actor_id] += 1
            else:
                misses = directory.cache_misses
                record = directory.cached_lookup(cache_id, actor_id)
                assert record is not None
                key = (cache_id, actor_id)
                if observed.get(key) != current[actor_id]:
                    # The fence must have forced the miss path.
                    assert directory.cache_misses == misses + 1
                observed[key] = current[actor_id]

    check()
