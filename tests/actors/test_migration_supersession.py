"""Regression: a resurrection superseding an aborted two-phase transfer.

Found by the fuzz "scale" profile: when a source server crashed
mid-transfer and the failure path resurrected the actor (same
``ActorRef``) fast enough to start a *new* migration before the old
transfer proc woke up, the old proc's abort handling operated on the
actor id rather than its own record — pruning the superseding
migration's in-progress entry and leaving the tombstone flagged
``migrating`` forever.  The fix keys every cleanup on record identity
(``_prune_prepared``) and resets the tombstone's flag in
``_abort_lost``; these tests pin both, plus the prompt-abort path when
an actor is destroyed while its migration drains the in-flight handler.
"""

from repro.actors import Actor, ActorSystem
from repro.cluster import Provisioner
from repro.sim import Simulator, Timeout, spawn


class BigWorker(Actor):
    #: Large state => tens of milliseconds of transfer delay, a wide
    #: window to crash the source mid-protocol.
    state_size_mb = 64.0

    def __init__(self):
        self.processed = 0

    def work(self, duration):
        yield self.compute(duration)
        self.processed += 1
        return self.processed


def make_system(servers=3):
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    for _ in range(servers):
        prov.boot_server(immediate=True)
    sim.run()
    return sim, ActorSystem(sim, prov)


def test_resurrection_supersedes_aborted_transfer():
    sim, system = make_system()
    src, dst, spare = system.provisioner.servers
    ref = system.create_actor(BigWorker, server=src)
    old_record = system.directory.lookup(ref.actor_id)

    done_old = system.migrate_actor(ref, dst)
    sim.run(until=sim.now + 5.0)  # old proc is parked in its transfer
    assert system._prepared[ref.actor_id][0] is old_record

    # Source dies mid-transfer; the old proc keeps sleeping on its
    # transfer timeout with a now-dead record.
    system.crash_server(src)
    assert system.directory.try_lookup(ref.actor_id) is None

    # Resurrect under the same ref and immediately re-migrate: the new
    # proc registers its own prepared entry for the same actor id.
    revived = system.resurrect_actor(old_record, server=spare)
    assert revived == ref
    new_record = system.directory.lookup(ref.actor_id)
    assert new_record is not old_record
    done_new = system.migrate_actor(ref, dst)
    sim.run(until=sim.now + 1.0)
    assert system._prepared[ref.actor_id][0] is new_record

    # Let the old proc wake and abort: it must prune only *its own*
    # prepared entry, leaving the superseding migration's in place.
    sim.run(until=sim.now + 60.0)
    assert done_old.value is False
    assert old_record.migrating is False  # tombstone flag reset
    if not done_new.value:
        assert system._prepared[ref.actor_id][0] is new_record

    sim.run()
    assert done_new.value is True
    assert system.server_of(ref) is dst
    assert system._prepared == {}  # nothing lingers after the dust settles
    assert new_record.migrating is False
    assert system._gates.get(ref.actor_id) is None


def test_destroy_while_draining_aborts_promptly():
    sim, system = make_system(servers=2)
    src, dst = system.provisioner.servers
    ref = system.create_actor(BigWorker, server=src)
    record = system.directory.lookup(ref.actor_id)

    # Park the actor in a long handler, then migrate: the proc blocks on
    # the idle signal until the handler finishes.
    from repro.actors import Client
    client = Client(system, name="driver")
    reply = client.call(ref, "work", 10_000.0)
    sim.run(until=sim.now + 50.0)
    done = system.migrate_actor(ref, dst)
    sim.run(until=sim.now + 50.0)
    assert record.migrating is True
    assert done.value is None  # still draining

    # Destroying the actor must wake the parked proc immediately — not
    # leak it until the (never-coming) handler completion.
    system.destroy_actor(ref)
    sim.run(until=sim.now + 1.0)
    assert done.value is False
    assert record.migrating is False
    assert ref.actor_id not in system._prepared
    assert reply.value is None  # in-flight caller got a None reply

    sim.run()
    assert system.directory.try_lookup(ref.actor_id) is None


def test_superseded_abort_does_not_clear_new_gate():
    """The old proc's rollback path must not null the *new* record's
    mailbox gate: gates are keyed by actor id, so only an
    identity-matched record may clear one."""
    sim, system = make_system()
    src, dst, spare = system.provisioner.servers
    ref = system.create_actor(BigWorker, server=src)
    old_record = system.directory.lookup(ref.actor_id)

    system.migrate_actor(ref, dst)
    sim.run(until=sim.now + 5.0)
    system.crash_server(src)
    system.resurrect_actor(old_record, server=spare)
    done_new = system.migrate_actor(ref, dst)
    sim.run(until=sim.now + 1.0)
    # The new migration's gate is up while it transfers.
    assert system._gates.get(ref.actor_id) is not None

    sim.run()
    assert done_new.value is True
    assert system.server_of(ref) is dst
    assert system._gates.get(ref.actor_id) is None
    assert system._prepared == {}
