"""Unit tests for actor schema extraction and property refs."""

import pytest

from repro.actors import (Actor, ActorRef, ActorSystem, describe_actor_class)
from repro.cluster import Provisioner
from repro.sim import Simulator


class Folder(Actor):
    files: list
    owner: object

    def __init__(self):
        self.files = []
        self.owner = None

    def open(self):
        return 1

    def _private_helper(self):
        return 2


class SubFolder(Folder):
    tags: list

    def archive(self):
        return 3


def test_schema_extracts_properties_and_functions():
    schema = describe_actor_class(Folder)
    assert schema.name == "Folder"
    assert schema.properties == frozenset({"files", "owner"})
    assert "open" in schema.functions
    assert "_private_helper" not in schema.functions


def test_schema_excludes_runtime_primitives():
    schema = describe_actor_class(Folder)
    for reserved in ("compute", "call", "tell", "sleep", "on_start",
                     "on_migrated"):
        assert reserved not in schema.functions


def test_subclass_inherits_schema():
    schema = describe_actor_class(SubFolder)
    assert schema.properties >= frozenset({"files", "owner", "tags"})
    assert {"open", "archive"} <= schema.functions


def test_non_actor_class_rejected():
    with pytest.raises(TypeError):
        describe_actor_class(dict)


def _system():
    sim = Simulator()
    prov = Provisioner(sim)
    prov.boot_server(immediate=True)
    sim.run()
    return ActorSystem(sim, prov)


def test_property_refs_single_and_collections():
    system = _system()
    a = system.create_actor(Folder)
    b = system.create_actor(Folder)
    c = system.create_actor(Folder)
    instance = system.actor_instance(a)

    instance.owner = b
    assert instance.property_refs("owner") == (b,)

    instance.files = [b, c]
    assert instance.property_refs("files") == (b, c)

    instance.files = {"x": b, "y": c}
    assert set(instance.property_refs("files")) == {b, c}


def test_property_refs_missing_or_non_ref():
    system = _system()
    a = system.create_actor(Folder)
    instance = system.actor_instance(a)
    assert instance.property_refs("nope") == ()
    instance.owner = "not a ref"
    assert instance.property_refs("owner") == ()
    instance.files = [1, 2, 3]
    assert instance.property_refs("files") == ()


def test_actor_ref_identity():
    ref_a = ActorRef(actor_id=1, type_name="Folder")
    ref_b = ActorRef(actor_id=1, type_name="Folder")
    assert ref_a == ref_b
    assert hash(ref_a) == hash(ref_b)
    assert "Folder#1" in repr(ref_a)
