"""Deeper messaging semantics: ordering, latency model, payload sizes."""

import pytest

from repro.actors import Actor, ActorSystem, Client, Message, RuntimeHooks
from repro.cluster import NetworkFabric, Provisioner
from repro.sim import Simulator, Timeout, spawn


class Recorder(Actor):
    def __init__(self):
        self.seen = []

    def note(self, tag):
        self.seen.append((self._system.sim.now, tag))
        return tag


class Pair(Actor):
    def __init__(self, peer=None):
        self.peer = peer

    def chain(self, depth):
        if depth <= 0 or self.peer is None:
            return 0
        result = yield self.call(self.peer, "chain_back", depth - 1)
        return result + 1

    def chain_back(self, depth):
        yield self.compute(0.1)
        return depth


def make_system(servers=2, remote_rtt_ms=2.0):
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    for _ in range(servers):
        prov.boot_server(immediate=True)
    sim.run()
    fabric = NetworkFabric(sim, remote_rtt_ms=remote_rtt_ms)
    return sim, ActorSystem(sim, prov, fabric=fabric)


def test_sender_order_preserved_for_one_target():
    sim, system = make_system(1)
    ref = system.create_actor(Recorder)
    client = Client(system)
    for tag in ("a", "b", "c", "d"):
        client.call(ref, "note", tag)
    sim.run(until=1_000.0)
    instance = system.actor_instance(ref)
    assert [tag for _t, tag in instance.seen] == ["a", "b", "c", "d"]


def test_local_call_cheaper_than_remote():
    sim, system = make_system(2)
    server = system.provisioner.servers[0]
    target = system.create_actor(Pair, server=server)
    local_caller = system.create_actor(Pair, target, server=server)
    remote_caller = system.create_actor(
        Pair, target, server=system.provisioner.servers[1])
    client = Client(system)
    latencies = {}

    def measure(name, caller):
        started = sim.now
        yield client.call(caller, "chain", 1)
        latencies[name] = sim.now - started

    def driver():
        yield from measure("local", local_caller)
        yield from measure("remote", remote_caller)

    spawn(sim, driver())
    sim.run(until=10_000.0)
    # The remote chain pays at least one extra RTT each way.
    assert latencies["remote"] > latencies["local"] + 1.5


def test_payload_size_increases_latency():
    sim, system = make_system(1)
    ref = system.create_actor(Recorder)
    client = Client(system)
    times = {}

    def driver():
        started = sim.now
        yield system.client_call(ref, "note", "small", size_bytes=100.0)
        times["small"] = sim.now - started
        started = sim.now
        yield system.client_call(ref, "note", "big",
                                 size_bytes=5_000_000.0)
        times["big"] = sim.now - started

    spawn(sim, driver())
    sim.run(until=60_000.0)
    assert times["big"] > times["small"]


def test_nested_call_depth():
    sim, system = make_system(2)
    a = system.create_actor(Pair, server=system.provisioner.servers[0])
    b = system.create_actor(Pair, a, server=system.provisioner.servers[1])
    # a's peer is b, b's peer is a: set a's peer after creation.
    system.actor_instance(a).peer = b
    client = Client(system)
    results = []

    def driver():
        value = yield client.call(b, "chain", 1)
        results.append(value)

    spawn(sim, driver())
    sim.run(until=10_000.0)
    assert results == [1]


def test_message_hooks_see_caller_kind():
    sim, system = make_system(1)
    recorder = system.create_actor(Recorder)
    peer = system.create_actor(Pair)
    caller = system.create_actor(Pair, peer)
    seen = []

    class Spy(RuntimeHooks):
        def on_message_delivered(self, record, message):
            seen.append((record.ref.type_name, message.caller_kind,
                         message.function))

    system.add_hooks(Spy())
    client = Client(system)

    def driver():
        yield client.call(recorder, "note", "direct")
        yield client.call(caller, "chain", 1)

    spawn(sim, driver())
    sim.run(until=10_000.0)
    assert ("Recorder", "client", "note") in seen
    assert ("Pair", "client", "chain") in seen
    # The nested hop is actor-to-actor: caller kind is the actor type.
    assert ("Pair", "Pair", "chain_back") in seen


def test_remove_hooks():
    sim, system = make_system(1)
    spy_calls = []

    class Spy(RuntimeHooks):
        def on_actor_created(self, record):
            spy_calls.append(record.ref.actor_id)

    spy = Spy()
    system.add_hooks(spy)
    system.create_actor(Recorder)
    system.remove_hooks(spy)
    system.create_actor(Recorder)
    assert len(spy_calls) == 1


def test_client_latency_stats():
    sim, system = make_system(1)
    ref = system.create_actor(Recorder)
    client = Client(system)

    def driver():
        for index in range(5):
            yield from client.timed_call(ref, "note", index)

    spawn(sim, driver())
    sim.run(until=10_000.0)
    assert client.completed == 5
    assert client.failed == 0
    assert len(client.latency_samples()) == 5
    assert client.mean_latency() > 0
