"""Unit tests for actor creation, messaging, and dispatch semantics."""

import pytest

from repro.actors import Actor, ActorSystem, Client
from repro.cluster import Provisioner
from repro.sim import Simulator, Timeout, spawn


class Counter(Actor):
    def __init__(self):
        self.value = 0

    def bump(self, amount):
        yield self.compute(1.0)
        self.value += amount
        return self.value

    def peek(self):
        return self.value  # plain (non-generator) handler


class Echo(Actor):
    def shout(self, text):
        return text.upper()


class Forwarder(Actor):
    def __init__(self, target):
        self.target = target

    def relay(self, amount):
        result = yield self.call(self.target, "bump", amount)
        return result

    def fire_and_forget(self, amount):
        self.tell(self.target, "bump", amount)
        return "sent"


def make_system(servers=2, itype="m5.large"):
    sim = Simulator()
    prov = Provisioner(sim, default_type=itype)
    for _ in range(servers):
        prov.boot_server(immediate=True)
    sim.run()
    return sim, ActorSystem(sim, prov)


def drive(sim, gen):
    done = []

    def wrapper():
        result = yield from gen
        done.append(result)

    spawn(sim, wrapper())
    sim.run(until=sim.now + 60_000.0)
    assert done, "driver did not finish"
    return done[0]


def test_create_actor_registers_and_allocates_memory():
    sim, system = make_system(1)
    server = system.provisioner.servers[0]
    before = server.memory_used_mb
    ref = system.create_actor(Counter)
    assert system.server_of(ref) is server
    assert server.memory_used_mb == before + Counter.state_size_mb
    assert system.directory.count() == 1


def test_create_actor_without_servers_fails():
    sim = Simulator()
    prov = Provisioner(sim)
    system = ActorSystem(sim, prov)
    with pytest.raises(RuntimeError):
        system.create_actor(Counter)


def test_client_call_roundtrip():
    sim, system = make_system(1)
    ref = system.create_actor(Counter)
    client = Client(system)

    def body():
        result, latency = yield from client.timed_call(ref, "bump", 5)
        return result, latency

    result, latency = drive(sim, body())
    assert result == 5
    assert latency > 0


def test_plain_function_handler():
    sim, system = make_system(1)
    ref = system.create_actor(Echo)
    client = Client(system)

    def body():
        result = yield client.call(ref, "shout", "hi")
        return result

    assert drive(sim, body()) == "HI"


def test_messages_to_one_actor_are_serialized():
    sim, system = make_system(1)
    ref = system.create_actor(Counter)
    client = Client(system)
    finish_times = []

    def one_call():
        yield client.call(ref, "bump", 1)
        finish_times.append(sim.now)

    for _ in range(3):
        spawn(sim, one_call())
    sim.run(until=60_000.0)
    assert len(finish_times) == 3
    # Each bump computes 1 ms; completions are strictly ordered.
    assert finish_times == sorted(finish_times)
    assert finish_times[1] - finish_times[0] >= 1.0


def test_actor_to_actor_call():
    sim, system = make_system(2)
    counter = system.create_actor(Counter, server=system.provisioner.servers[0])
    fwd = system.create_actor(Forwarder, counter,
                              server=system.provisioner.servers[1])
    client = Client(system)

    def body():
        result = yield client.call(fwd, "relay", 7)
        return result

    assert drive(sim, body()) == 7


def test_tell_is_fire_and_forget():
    sim, system = make_system(1)
    counter = system.create_actor(Counter)
    fwd = system.create_actor(Forwarder, counter)
    client = Client(system)

    def body():
        ack = yield client.call(fwd, "fire_and_forget", 3)
        yield Timeout(sim, 100.0)  # let the tell land
        value = yield client.call(counter, "peek")
        return ack, value

    ack, value = drive(sim, body())
    assert ack == "sent"
    assert value == 3


def test_call_to_dead_actor_returns_none():
    sim, system = make_system(1)
    ref = system.create_actor(Counter)
    system.destroy_actor(ref)
    client = Client(system)

    def body():
        result = yield client.call(ref, "bump", 1)
        return result

    assert drive(sim, body()) is None


def test_destroy_actor_frees_memory_and_is_idempotent():
    sim, system = make_system(1)
    server = system.provisioner.servers[0]
    ref = system.create_actor(Counter)
    system.destroy_actor(ref)
    system.destroy_actor(ref)
    assert server.memory_used_mb == 0.0
    assert system.directory.count() == 0


def test_unknown_function_raises():
    sim, system = make_system(1)
    ref = system.create_actor(Counter)
    client = Client(system)
    client.call(ref, "does_not_exist")
    with pytest.raises(AttributeError):
        sim.run()


def test_placement_policy_is_consulted():
    sim, system = make_system(3)
    target = system.provisioner.servers[2]
    calls = []

    def policy(cls, candidates, related):
        calls.append((cls.__name__, len(candidates), related))
        return target

    system.placement_policy = policy
    ref = system.create_actor(Counter)
    assert system.server_of(ref) is target
    assert calls == [("Counter", 3, None)]


def test_placement_policy_none_falls_back_to_random():
    sim, system = make_system(3)
    system.placement_policy = lambda cls, candidates, related: None
    refs = [system.create_actor(Counter) for _ in range(16)]
    homes = {system.server_of(ref).server_id for ref in refs}
    assert len(homes) > 1  # random spread, not a single server


def test_related_hint_passed_through():
    sim, system = make_system(2)
    anchor = system.create_actor(Counter)
    seen = []

    def policy(cls, candidates, related):
        seen.append(related)
        return None

    system.placement_policy = policy
    system.create_actor(Counter, related=anchor)
    assert seen == [anchor]


def test_pin_blocks_migration():
    sim, system = make_system(2)
    ref = system.create_actor(Counter, server=system.provisioner.servers[0])
    system.pin(ref)
    done = system.migrate_actor(ref, system.provisioner.servers[1])
    sim.run()
    assert done.value is False
    assert system.server_of(ref) is system.provisioner.servers[0]


def test_force_migration_overrides_pin():
    sim, system = make_system(2)
    ref = system.create_actor(Counter, server=system.provisioner.servers[0])
    system.pin(ref)
    done = system.migrate_actor(ref, system.provisioner.servers[1],
                                force=True)
    sim.run()
    assert done.value is True
    assert system.server_of(ref) is system.provisioner.servers[1]
