"""Invariant checker unit tests.

A small real cluster hosts the checker; violations are then provoked by
emitting fabricated manager-bus events (the checker cannot tell them
from real ones), so each detection path is pinned without needing a
whole scenario that actually misbehaves.
"""

import pytest

from repro.actors import Actor
from repro.bench import build_cluster
from repro.check import INVARIANTS, InvariantChecker, Violation
from repro.check.invariants import InvariantError
from repro.core import ElasticityManager, EmrConfig, compile_source


class Spinner(Actor):
    def spin(self, cpu_ms):
        yield self.compute(cpu_ms)
        return True


def make_checker(strict=False, **config):
    bed = build_cluster(2, seed=7)
    policy = compile_source(
        "server.cpu.perc > 80 or server.cpu.perc < 60 "
        "=> balance({Spinner}, cpu);", [Spinner])
    manager = ElasticityManager(
        bed.system, policy,
        EmrConfig(period_ms=5_000.0, gem_wait_ms=300.0, **config))
    checker = InvariantChecker(manager, strict=strict)
    checker.attach()
    return bed, manager, checker


# -- catalogue ---------------------------------------------------------


def test_catalogue_shape():
    assert len(INVARIANTS) == 26
    for name, description in INVARIANTS.items():
        assert name == name.lower()
        assert " " not in name
        assert len(description) > 20, f"{name}: describe it properly"


def test_catalogue_is_documented():
    """docs/testing.md must describe every invariant by name."""
    import os
    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "docs", "testing.md")
    with open(path) as handle:
        text = handle.read()
    for name in INVARIANTS:
        assert f"`{name}`" in text, f"{name} missing from docs/testing.md"


def test_violation_formatting():
    violation = Violation(invariant="single-flight", time_ms=1_234.5,
                          message="two migrations of actor 7")
    assert "1.234s" in str(violation) or "1.235s" in str(violation)
    assert "single-flight" in str(violation)


def test_violate_rejects_unknown_invariant():
    _bed, _manager, checker = make_checker()
    with pytest.raises(AssertionError):
        checker._violate("not-an-invariant", "whatever")


# -- detection paths (fabricated events) -------------------------------


def test_gem_vote_mismatch_detected():
    _bed, manager, checker = make_checker()
    manager.emit("gem-vote", requester=0, direction="overloaded",
                 peer_views=((1, 0.0, 3), (2, 0.0, 3)),
                 agreeing=0, decision=True)
    names = [v.invariant for v in checker.violations]
    assert names == ["scale-out-majority"]


def test_scale_without_vote_detected():
    _bed, manager, checker = make_checker()
    manager.emit("scale-in", gem_id=0, victim="x",
                 underload_fraction=1.0, planned_moves=0)
    assert [v.invariant for v in checker.violations] == \
        ["scale-in-majority"]


def test_lem_round_bad_percentages_detected():
    _bed, manager, checker = make_checker()
    manager.emit("lem-round", server="s-1", server_cpu_perc=120.0,
                 server_mem_perc=1.0, server_net_perc=0.0,
                 actor_count=1, actor_mem_mb=2.0,
                 server_mem_used_mb=2.0, memory_mb=1024,
                 actor_cpu_percs=(130.0,))
    names = [v.invariant for v in checker.violations]
    assert names == ["resource-accounting", "resource-accounting"]


def test_lem_round_memory_identity_detected():
    _bed, manager, checker = make_checker()
    manager.emit("lem-round", server="s-1", server_cpu_perc=10.0,
                 server_mem_perc=1.0, server_net_perc=0.0,
                 actor_count=1, actor_mem_mb=2.0,
                 server_mem_used_mb=6.0, memory_mb=1024,
                 actor_cpu_percs=(5.0,))
    assert [v.invariant for v in checker.violations] == \
        ["resource-accounting"]


def test_root_round_while_root_failed_detected():
    _bed, manager, checker = make_checker()
    manager.emit("fault-injected", fault="kill-root", generation=0)
    manager.emit("root-round", generation=0, groups=())
    assert [v.invariant for v in checker.violations] == \
        ["root-single-authority"]


def test_superseded_root_holding_rounds_detected():
    _bed, manager, checker = make_checker()
    manager.emit("root-failover", generation=2, promoted_leaf=0,
                 respawned=False)
    manager.emit("root-round", generation=1, groups=())
    assert [v.invariant for v in checker.violations] == \
        ["root-single-authority"]


def test_root_failover_generation_regression_detected():
    _bed, manager, checker = make_checker()
    manager.emit("root-failover", generation=3, promoted_leaf=0,
                 respawned=False)
    manager.emit("root-failover", generation=3, promoted_leaf=1,
                 respawned=False)
    assert [v.invariant for v in checker.violations] == \
        ["root-single-authority"]


def test_partial_delta_after_adoption_detected():
    _bed, manager, checker = make_checker()
    manager.emit("group-adopted", group=1, adopter=0, home_leaves=(1,))
    # A delta (only the envelope + one field) where a full aggregate is
    # required: the adopter has no baseline for this group.
    manager.emit("gem-aggregate", group=1, gem_id=0, epoch=0,
                 server_names=(), server_cpu_percs=(), cpu_sum=0.0,
                 mem_sum=0.0, net_sum=0.0, server_count=0, actor_count=0,
                 delta_fields=("cpu_sum", "epoch", "gem_id", "group"))
    assert [v.invariant for v in checker.violations] == \
        ["aggregate-resync-after-failover"]
    # The requirement is consumed: the next partial delta is fine.
    manager.emit("gem-aggregate", group=1, gem_id=0, epoch=0,
                 server_names=(), server_cpu_percs=(), cpu_sum=0.0,
                 mem_sum=0.0, net_sum=0.0, server_count=0, actor_count=0,
                 delta_fields=("cpu_sum", "epoch", "gem_id", "group"))
    assert len(checker.violations) == 1


def test_stranded_root_migration_detected():
    bed, manager, checker = make_checker()
    manager.emit("migration-started", actor="<Spinner#9>", actor_id=9,
                 action="balance", src="s-1", dst="s-2", issuer="root")
    assert not checker.violations
    bound = (3 * manager.config.migration_phase_timeout_ms
             + 2 * manager.config.period_ms)
    bed.run(until_ms=bound + 1_000.0)
    checker._check_stranded_root_migrations()
    assert [v.invariant for v in checker.violations] == \
        ["no-stranded-cross-group-migration"]
    # One report per stranded migration, not one per sweep.
    checker._check_stranded_root_migrations()
    assert len(checker.violations) == 1


def test_resolved_root_migration_not_stranded():
    from types import SimpleNamespace
    bed, manager, checker = make_checker()
    manager.emit("migration-started", actor="<Spinner#9>", actor_id=9,
                 action="balance", src="s-1", dst="s-2", issuer="root")
    # Aborts arrive through the runtime hook, not the event bus.
    record = SimpleNamespace(ref=SimpleNamespace(actor_id=9))
    checker._on_migration_aborted(record, None, None, "timeout")
    bound = (3 * manager.config.migration_phase_timeout_ms
             + 2 * manager.config.period_ms)
    bed.run(until_ms=bound + 1_000.0)
    checker._check_stranded_root_migrations()
    assert not checker.violations


def test_strict_mode_raises_invariant_error():
    _bed, manager, _checker = make_checker(strict=True)
    with pytest.raises(InvariantError, match="scale-in-majority"):
        manager.emit("scale-in", gem_id=0, victim="x",
                     underload_fraction=1.0, planned_moves=0)


def test_violation_cap():
    _bed, manager, checker = make_checker()
    checker.max_violations = 3
    for _ in range(10):
        manager.emit("scale-in", gem_id=0, victim="x",
                     underload_fraction=1.0, planned_moves=0)
    assert len(checker.violations) == 3


def test_detach_restores_quiet_manager():
    _bed, manager, checker = make_checker()
    assert manager.debug_events
    checker.detach()
    assert not manager.debug_events
    manager.emit("scale-in", gem_id=0, victim="x",
                 underload_fraction=1.0, planned_moves=0)
    assert checker.violations == []


# -- partition-era invariants (fabricated events) -----------------------


def test_unreachable_peer_does_not_count_as_agreeing():
    _bed, manager, checker = make_checker()
    manager.emit("gem-vote", requester=0, direction="overloaded",
                 peer_views=((1, 1.0, 3, False), (2, 0.0, 3, True)),
                 agreeing=0, decision=True)
    assert [v.invariant for v in checker.violations] == \
        ["scale-out-majority"]


def test_vetoed_vote_must_be_a_denial():
    _bed, manager, checker = make_checker()
    manager.emit("gem-vote", requester=0, direction="overloaded",
                 peer_views=(), agreeing=0, decision=True,
                 vetoed="degraded")
    assert [v.invariant for v in checker.violations] == \
        ["scale-out-majority"]


def test_degraded_gem_vote_and_scale_detected():
    _bed, manager, checker = make_checker()
    manager.emit("gem-degraded", gem_id=0, epoch=0)
    manager.emit("gem-vote", requester=0, direction="overloaded",
                 peer_views=(), agreeing=0, decision=True)
    manager.emit("scale-out", gem_id=0, overload_fraction=1.0)
    names = [v.invariant for v in checker.violations]
    assert "no-split-brain" in names
    assert names.count("no-split-brain") == 2  # vote + execution
    manager.emit("gem-restored", gem_id=0, epoch=0)
    manager.emit("gem-vote", requester=0, direction="overloaded",
                 peer_views=(), agreeing=0, decision=True)
    assert [v.invariant for v in checker.violations].count(
        "no-split-brain") == 2


def test_epoch_regression_detected():
    _bed, manager, checker = make_checker()
    manager.epoch = 5
    manager.emit("epoch-advanced", epoch=5, reason="partition")
    assert checker.violations == []
    manager.emit("epoch-advanced", epoch=4, reason="heal")
    assert [v.invariant for v in checker.violations] == \
        ["epoch-monotonicity"]


def test_event_epoch_beyond_global_detected():
    _bed, manager, checker = make_checker()
    manager.emit("gem-degraded", gem_id=0, epoch=7)
    assert [v.invariant for v in checker.violations] == \
        ["epoch-monotonicity"]


def test_bogus_stale_rejection_detected():
    _bed, manager, checker = make_checker()
    manager.emit("stale-epoch-rejected", server="s-0", gem_id=0,
                 lem_epoch=1, gem_epoch=1)
    assert [v.invariant for v in checker.violations] == \
        ["epoch-monotonicity"]


def test_post_heal_revenant_detected():
    bed, manager, checker = make_checker()
    ref = bed.system.create_actor(Spinner)
    # Pretend the checker saw this actor lost to a crash; a live
    # directory record for it after heal means it exists twice.
    checker._lost[ref.actor_id] = "Spinner"
    manager.emit("partition-healed", epoch=0, readmitted=(),
                 actors_minority_side=0, actors_total=1,
                 stale_view_records=0)
    assert "no-duplicate-actor" in \
        [v.invariant for v in checker.violations]


# -- real-run smoke -----------------------------------------------------


def test_healthy_run_has_no_violations():
    from repro.actors import Client
    from repro.sim import spawn
    bed, manager, checker = make_checker()
    refs = [bed.system.create_actor(Spinner) for _ in range(4)]
    manager.start()
    client = Client(bed.system)
    rng = bed.streams.stream("load")

    def loop(ref):
        while bed.sim.now < 12_000.0:
            yield client.call(ref, "spin", 5.0 + rng.random() * 10.0)

    for ref in refs:
        spawn(bed.sim, loop(ref))
    bed.run(until_ms=12_000.0)
    assert checker.final_check() == []
    assert checker.checks_run > 0
