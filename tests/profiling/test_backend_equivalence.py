"""Backend-indirection equivalence: ``SimBackend`` is invisible.

The live-runtime work re-routed every EMR-side runtime call (migrate /
pin / actors_on / mailbox_depth / hooks / GEM scheduling) through the
:class:`repro.runtime.RuntimeBackend` surface.  That refactor is only
admissible if the sim backend behind the interface is *bit-identical*
to calling the ``ActorSystem`` directly.  Two layers of evidence,
mirroring ``test_golden_refresh``:

1. the Fig. 7 / Fig. 9 equivalence scenarios re-run with (a) a bypass
   shim that binds the backend's methods straight to the system's bound
   methods — the pre-refactor call graph — and (b) the real
   ``SimBackend`` with call counting, must produce identical traces;
2. fuzz-corpus artifacts replayed under both shims must produce the
   same verdict fingerprint.

The counting run additionally proves the test is non-vacuous: the
backend surface must actually have been exercised (otherwise the
equality would be comparing two identical bypasses).

``ActorSystem`` looks ``SimBackend`` up on its module at construction
time, so patching ``repro.actors.system.SimBackend`` swaps the shim for
every system the scenario builders create.
"""

import glob
import os
from contextlib import contextmanager

import pytest

import repro.actors.system as system_module
from repro.cli import load_fuzz_scenario
from repro.fuzz import run_scenario
from repro.runtime import SimBackend

from test_golden_refresh import result_fingerprint
from test_incremental_equivalence import (run_estore_scenario,
                                          run_pagerank_scenario)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "fuzz",
                          "corpus")
#: ≥ 3 artifacts per the acceptance criteria; the full corpus runs in
#: test_golden_refresh, so a spread of four profiles is enough here.
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))[:4]


class CountingBackend(SimBackend):
    """The real SimBackend, with proof-of-use counters."""

    calls = None  # installed by the fixture as a plain dict

    def _note(self, name):
        CountingBackend.calls[name] = CountingBackend.calls.get(name, 0) + 1

    def migrate_actor(self, ref, target, force=False):
        self._note("migrate_actor")
        return super().migrate_actor(ref, target, force=force)

    def pin(self, ref, pinned=True):
        self._note("pin")
        super().pin(ref, pinned)

    def actors_on(self, server):
        self._note("actors_on")
        return super().actors_on(server)

    def mailbox_depth(self, actor_id):
        self._note("mailbox_depth")
        return super().mailbox_depth(actor_id)

    def add_hooks(self, hooks):
        self._note("add_hooks")
        super().add_hooks(hooks)

    def schedule(self, delay_ms, callback, *args):
        self._note("schedule")
        super().schedule(delay_ms, callback, *args)


class BypassBackend:
    """Pre-refactor call graph: every method IS the system's bound
    method — zero indirection, the reference the interface must match."""

    name = "bypass"
    wall_clock = False

    def __init__(self, system):
        self.system = system
        self.migrate_actor = system.migrate_actor
        self.pin = system.pin
        self.actors_on = system.actors_on
        self.mailbox_depth = system.mailbox_depth
        self.server_of = system.server_of
        self.resurrect_actor = system.resurrect_actor
        self.create_actor = system.create_actor
        self.add_hooks = system.add_hooks
        self.remove_hooks = system.remove_hooks
        self.schedule = system.sim.schedule

    @property
    def now(self):
        return self.system.sim.now

    def spawn(self, proc, name=None):
        from repro.sim import spawn as sim_spawn
        return sim_spawn(self.system.sim, proc, name=name)

    def servers(self):
        return self.system.provisioner.servers


@contextmanager
def backend_shim(cls):
    saved = system_module.SimBackend
    system_module.SimBackend = cls
    try:
        yield
    finally:
        system_module.SimBackend = saved


@contextmanager
def counting():
    CountingBackend.calls = {}
    with backend_shim(CountingBackend):
        yield CountingBackend.calls


def assert_surface_exercised(calls):
    # Every scenario runs an EMR, so the observation surface must have
    # been hit; mutation counts depend on the scenario and aren't
    # asserted here.
    assert calls.get("actors_on", 0) > 0, calls
    assert calls.get("add_hooks", 0) > 0, calls


def test_pagerank_trace_identical_behind_backend():
    with backend_shim(BypassBackend):
        reference = run_pagerank_scenario(incremental=True)
    with counting() as calls:
        observed = run_pagerank_scenario(incremental=True)
    assert observed == reference
    assert reference[2], "scenario produced no migrations"
    assert_surface_exercised(calls)
    assert calls.get("migrate_actor", 0) > 0, calls


def test_estore_trace_identical_behind_backend():
    with backend_shim(BypassBackend):
        reference = run_estore_scenario(incremental=True)
    with counting() as calls:
        observed = run_estore_scenario(incremental=True)
    assert observed == reference
    assert reference[2], "scenario produced no migrations"
    assert_surface_exercised(calls)


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p)[:-5] for p in CORPUS])
def test_corpus_replay_identical_behind_backend(path):
    scenario = load_fuzz_scenario(path)
    with backend_shim(BypassBackend):
        reference = run_scenario(scenario)
    with counting() as calls:
        observed = run_scenario(scenario)
    assert result_fingerprint(observed) == result_fingerprint(reference)
    assert reference.ok, reference.summary()
    assert observed.ok, observed.summary()
    assert_surface_exercised(calls)
