"""Golden-trace equivalence: incremental profiling vs full recompute.

The incremental hot path (ring meters, snapshot caching, indexed rule
evaluation) is only admissible if it is *invisible* to the elasticity
runtime: every decision, in order, must be identical to the original
full-recompute implementation.  These tests run scaled-down versions of
the paper's Fig. 7 (PageRank rebalancing) and Fig. 9 (E-Store
colocation + reserve) scenarios twice — ``incremental_profiling`` on and
off — and assert the two executions produce byte-identical elasticity
traces, migration logs, and final placements.

Actor/server/message ids are module-global counters, so each run resets
them first; without that, the second run's servers would be named
differently and the traces could never match.
"""

import itertools

import repro.actors.message as message_module
import repro.actors.system as system_module
import repro.cluster.server as server_module
from repro.actors import Client
from repro.apps.estore import ESTORE_POLICY, Partition, build_estore
from repro.apps.pagerank import (PAGERANK_POLICY, PageRankWorker,
                                 build_pagerank, run_iterations)
from repro.bench import build_cluster
from repro.check import InvariantChecker
from repro.core import (ElasticityManager, ElasticityTracer, EmrConfig,
                        compile_source)
from repro.graphs import powerlaw_graph
from repro.sim import Timeout, spawn


def _reset_id_counters():
    """Global id counters restart at 1 so two in-process runs produce
    comparable actor/server/message names."""
    server_module._server_ids = itertools.count(1)
    system_module._actor_ids = itertools.count(1)
    message_module._message_ids = itertools.count(1)


def _observe(bed, manager, tracer, refs):
    trace = [str(event) for event in tracer.events]
    placements = [(str(ref), bed.system.server_of(ref).name)
                  for ref in refs]
    migrations = [(event.time_ms, str(event.actor), event.src, event.dst)
                  for event in manager.migration_log]
    return trace, placements, migrations


def run_pagerank_scenario(incremental, iterations=10):
    """Fig. 7 (scaled): every worker starts on one server (the bad
    initial placement) and the balance rule spreads them out."""
    _reset_id_counters()
    bed = build_cluster(3, "m5.large", seed=11)
    graph = powerlaw_graph(240, edges_per_node=3)
    deployment = build_pagerank(bed, graph, num_partitions=9,
                                placement=[0] * 9, compute_scale=2.0)
    policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=8_000.0, gem_wait_ms=500.0, lem_stagger_ms=10.0,
        incremental_profiling=incremental))
    tracer = ElasticityTracer(manager)
    tracer.attach()
    checker = InvariantChecker(manager, tracer=tracer)
    checker.attach()
    manager.start()
    run_iterations(deployment, iterations=iterations)
    # Idle tail: two more periods with no traffic, so the manager also
    # profiles quiescent actors (the snapshot-cache fast path).
    bed.run(until_ms=bed.sim.now + 20_000.0)
    checker.assert_clean()
    observed = _observe(bed, manager, tracer, deployment.workers)
    manager.stop()
    tracer.detach()
    checker.detach()
    return observed


def run_estore_scenario(incremental):
    """Fig. 9 (scaled): skewed reads over root+child partitions with the
    reserve/colocate/balance policy."""
    _reset_id_counters()
    bed = build_cluster(3, "m1.small", seed=13)
    setup = build_estore(bed, num_roots=8, children_per_root=2,
                         num_home_servers=2)
    policy = compile_source(ESTORE_POLICY, [Partition])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=10_000.0, gem_wait_ms=500.0, lem_stagger_ms=10.0,
        incremental_profiling=incremental))
    tracer = ElasticityTracer(manager)
    tracer.attach()
    checker = InvariantChecker(manager, tracer=tracer)
    checker.attach()
    manager.start()

    duration_ms = 45_000.0
    # Enough clients that the busiest home server climbs above the
    # balance band's midpoint — otherwise the underload planner has no
    # feeder and the scenario decides nothing.
    clients = [Client(bed.system, name=f"c{i}") for i in range(16)]
    rng = bed.streams.stream("estore-key-pick")

    def client_loop(client):
        while bed.sim.now < duration_ms:
            root = setup.picker.pick()
            yield from client.timed_call(root, "read",
                                         rng.randrange(10_000))
            yield Timeout(bed.sim, 10.0)

    for client in clients:
        spawn(bed.sim, client_loop(client))
    bed.run(until_ms=duration_ms)
    # Idle tail, as in the PageRank scenario.
    bed.run(until_ms=duration_ms + 25_000.0)

    refs = list(setup.roots)
    for kids in setup.children:
        refs.extend(kids)
    checker.assert_clean()
    observed = _observe(bed, manager, tracer, refs)
    manager.stop()
    tracer.detach()
    checker.detach()
    return observed


def test_pagerank_trace_identical():
    incremental = run_pagerank_scenario(incremental=True)
    full = run_pagerank_scenario(incremental=False)
    assert incremental == full


def test_pagerank_scenario_actually_decides():
    # Guard against vacuous equivalence: the scenario must exercise the
    # decision path, not compare two empty traces.
    trace, _placements, migrations = run_pagerank_scenario(incremental=True)
    assert any("migration" in line for line in trace)
    assert migrations


def test_estore_trace_identical():
    incremental = run_estore_scenario(incremental=True)
    full = run_estore_scenario(incremental=False)
    assert incremental == full


def test_estore_scenario_actually_decides():
    _trace, _placements, migrations = run_estore_scenario(incremental=True)
    assert migrations


def test_incremental_cache_is_exercised():
    """The equivalence result is only meaningful if the incremental run
    actually reused cached snapshots (otherwise it silently degraded to
    the full path)."""
    _reset_id_counters()
    bed = build_cluster(3, "m5.large", seed=11)
    graph = powerlaw_graph(240, edges_per_node=3)
    deployment = build_pagerank(bed, graph, num_partitions=9,
                                placement=[0] * 9, compute_scale=2.0)
    policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
    manager = ElasticityManager(bed.system, policy, EmrConfig(
        period_ms=8_000.0, gem_wait_ms=500.0, lem_stagger_ms=10.0,
        incremental_profiling=True))
    manager.start()
    run_iterations(deployment, iterations=4)
    bed.run(until_ms=bed.sim.now + 20_000.0)  # idle periods → cache hits
    profiler = manager.profiler
    assert profiler.snapshot_cache_hits > 0
    manager.stop()
