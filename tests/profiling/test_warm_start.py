"""Warm-start profiles: A/B of resurrection with and without
``warm_start`` re-seeding.

Cold (the default) is the safe choice when a resurrected actor restarts
from fresh state; warm pairs with durability's checkpoint restore, where
the state — and therefore plausibly the load — actually survives the
crash.
"""

from repro.actors import Actor, Client
from repro.bench import build_cluster
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.core.profiling import ProfilingRuntime
from repro.durability import DurabilityConfig
from repro.sim import spawn

WINDOW_MS = 10_000.0


class _Idle(Actor):
    def poke(self):
        yield self.compute(1.0)
        return True


def profile_through_resurrection(warm_start):
    """Unit-level A/B: burn CPU, destroy, resurrect, snapshot."""
    bed = build_cluster(1, "m5.large", seed=3)
    ref = bed.system.create_actor(_Idle)
    record = bed.system.directory.lookup(ref.actor_id)
    profiler = ProfilingRuntime(bed.sim, window_ms=WINDOW_MS,
                                warm_start=warm_start)
    profiler.on_actor_created(record)
    profiler.on_compute(record, 42.0)
    bed.sim.run(until=bed.sim.now + 500.0)
    before = profiler.snapshot_actors([record])[0]
    profiler.on_actor_destroyed(record)
    profiler.on_actor_resurrected(record)
    after = profiler.snapshot_actors([record])[0]
    return profiler, before, after


def test_cold_start_forgets_precrash_rates():
    profiler, before, after = profile_through_resurrection(False)
    assert before.cpu_ms_per_min > 0.0
    assert after.cpu_ms_per_min == 0.0
    assert profiler.warm_starts == 0
    assert profiler._retired == {}         # nothing cached when off


def test_warm_start_carries_precrash_rates():
    profiler, before, after = profile_through_resurrection(True)
    assert after.cpu_ms_per_min == before.cpu_ms_per_min > 0.0
    assert profiler.warm_starts == 1
    assert profiler._retired == {}         # consumed, not leaked


def test_warm_start_cold_when_nothing_was_retired():
    bed = build_cluster(1, "m5.large", seed=3)
    ref = bed.system.create_actor(_Idle)
    record = bed.system.directory.lookup(ref.actor_id)
    profiler = ProfilingRuntime(bed.sim, window_ms=WINDOW_MS,
                                warm_start=True)
    # Resurrected without ever being profiled-then-destroyed (e.g. the
    # profiler attached after the crash): falls back to a fresh profile.
    profiler.on_actor_resurrected(record)
    assert profiler.snapshot_actors([record])[0].cpu_ms_per_min == 0.0
    assert profiler.warm_starts == 0


def test_retired_cache_is_bounded():
    bed = build_cluster(1, "m5.large", seed=3)
    profiler = ProfilingRuntime(bed.sim, window_ms=WINDOW_MS,
                                warm_start=True)
    profiler._RETIRED_CAP = 4
    records = []
    for _ in range(10):
        ref = bed.system.create_actor(_Idle)
        record = bed.system.directory.lookup(ref.actor_id)
        profiler.on_actor_created(record)
        records.append(record)
    for record in records:
        profiler.on_actor_destroyed(record)
    assert len(profiler._retired) == 4
    # FIFO: the survivors are the newest retirees.
    assert sorted(profiler._retired) == \
        sorted(r.ref.actor_id for r in records[-4:])


# -- end-to-end through EmrConfig + durability ---------------------------


class Counter(Actor):
    state_size_mb = 1.0

    def __init__(self):
        self.total = 0

    def add(self, amount):
        yield self.compute(0.5)
        self.total += amount
        return self.total


def run_crash(warm_start_profiles):
    bed = build_cluster(3, seed=7)
    manager = ElasticityManager(
        bed.system,
        compile_source("server.cpu.perc > 80 or server.cpu.perc < 60 "
                       "=> balance({Counter}, cpu);", [Counter]),
        EmrConfig(period_ms=2_000.0, gem_wait_ms=300.0,
                  lem_stagger_ms=10.0,
                  warm_start_profiles=warm_start_profiles,
                  durability=DurabilityConfig(
                      enabled=True, checkpoint_interval_ms=1_000.0)))
    manager.start()
    ref = bed.system.create_actor(Counter, server=bed.servers[0])
    client = Client(bed.system)

    def loop():
        # Quiesce before the crash so no call is in flight at t=4000 —
        # a message in transit would be delivered to the resurrected
        # actor (same ref) and dirty the cold control's fresh profile.
        while bed.sim.now < 3_800.0:
            yield client.call(ref, "add", 1)

    spawn(bed.sim, loop())
    bed.run(until_ms=4_000.0)
    record = bed.system.directory.lookup(ref.actor_id)
    before = manager.profiler.snapshot_actors([record])[0]
    assert before.cpu_ms_per_min > 0.0
    # Resurrect promptly (the EMR's failure detector can only notice a
    # crash after at least one silent period, by which time the windowed
    # rates have aged out either way) — the manual path runs the same
    # on_actor_resurrected hooks and durability restore.
    bed.system.crash_server(bed.servers[0])
    assert bed.system.resurrect_actor(record) is ref
    bed.run(until_ms=5_000.0)
    record = bed.system.directory.lookup(ref.actor_id)
    after = manager.profiler.snapshot_actors([record])[0]
    # Durability restored the checkpointed total in both variants; what
    # differs is only the profile.
    assert record.instance.total > 0
    return manager, after


def test_emr_warm_start_reseeds_resurrected_profile():
    manager, after = run_crash(warm_start_profiles=True)
    # The restored actor resumes with its pre-crash profile: rules see a
    # busy actor immediately instead of re-learning from zero.
    assert manager.profiler.warm_starts == 1
    assert after.cpu_ms_per_min > 0.0


def test_emr_default_resurrects_cold():
    manager, after = run_crash(warm_start_profiles=False)
    assert manager.profiler.warm_starts == 0
    assert after.cpu_ms_per_min == 0.0
