"""Unit tests for the elasticity profiling runtime (EPR)."""

import pytest

from repro.actors import Actor, ActorSystem, Client
from repro.cluster import Provisioner
from repro.core.profiling import ProfilingRuntime
from repro.sim import Simulator, Timeout, spawn


class Shard(Actor):
    state_size_mb = 4.0
    items: list

    def __init__(self):
        self.items = []

    def read(self):
        yield self.compute(2.0)
        return 1

    def write(self, data):
        yield self.compute(4.0)
        return 2


class Caller(Actor):
    def __init__(self, target):
        self.target = target

    def go(self):
        result = yield self.call(self.target, "read")
        return result


def setup(profiled=True, window_ms=600_000.0):
    sim = Simulator()
    prov = Provisioner(sim, default_type="m5.large")
    for _ in range(2):
        prov.boot_server(immediate=True)
    sim.run()
    system = ActorSystem(sim, prov)
    profiler = ProfilingRuntime(sim, window_ms=window_ms)
    if profiled:
        system.add_hooks(profiler)
    return sim, system, profiler


def run_calls(sim, system, ref, function, count, *args):
    client = Client(system)

    def body():
        for _ in range(count):
            yield client.call(ref, function, *args)

    spawn(sim, body())
    sim.run(until=sim.now + 120_000.0)


def test_message_counts_per_caller_kind_and_function():
    sim, system, profiler = setup()
    shard = system.create_actor(Shard, server=system.provisioner.servers[0])
    run_calls(sim, system, shard, "read", 6)
    run_calls(sim, system, shard, "write", 3, "payload")

    record = system.directory.lookup(shard.actor_id)
    snap = profiler.snapshot_actors([record])[0]
    # Rates are per minute; the window is 60 s and sim.now > 60 s, so the
    # counts normalize to the raw totals scaled by window coverage.
    reads = snap.call_count_per_min[("client", "read")]
    writes = snap.call_count_per_min[("client", "write")]
    assert reads > 0 and writes > 0
    assert reads / writes == pytest.approx(2.0, rel=0.01)


def test_cpu_usage_attributed_to_actor():
    sim, system, profiler = setup()
    shard = system.create_actor(Shard, server=system.provisioner.servers[0])
    run_calls(sim, system, shard, "read", 5)
    record = system.directory.lookup(shard.actor_id)
    snap = profiler.snapshot_actors([record])[0]
    assert snap.cpu_perc > 0
    assert snap.cpu_ms_per_min > 0


def test_pair_counts_track_actor_callers():
    sim, system, profiler = setup()
    shard = system.create_actor(Shard, server=system.provisioner.servers[0])
    caller = system.create_actor(Caller, shard,
                                 server=system.provisioner.servers[1])
    run_calls(sim, system, caller, "go", 4)
    record = system.directory.lookup(shard.actor_id)
    snap = profiler.snapshot_actors([record])[0]
    pair_rate = snap.pair_count_per_min[(caller.actor_id, "read")]
    assert pair_rate > 0
    # Aggregate by caller type is present too.
    assert snap.call_count_per_min[("Caller", "read")] == \
        pytest.approx(pair_rate)


def test_call_percentage_within_same_type_same_server():
    sim, system, profiler = setup()
    server = system.provisioner.servers[0]
    hot = system.create_actor(Shard, server=server)
    cold = system.create_actor(Shard, server=server)
    run_calls(sim, system, hot, "read", 9)
    run_calls(sim, system, cold, "read", 3)
    records = system.actors_on(server)
    snaps = {s.actor_id: s for s in profiler.snapshot_actors(records)}
    assert snaps[hot.actor_id].call_perc[("client", "read")] == \
        pytest.approx(75.0, abs=0.5)
    assert snaps[cold.actor_id].call_perc[("client", "read")] == \
        pytest.approx(25.0, abs=0.5)


def test_net_bytes_tracked_for_remote_messages():
    sim, system, profiler = setup()
    shard = system.create_actor(Shard, server=system.provisioner.servers[0])
    caller = system.create_actor(Caller, shard,
                                 server=system.provisioner.servers[1])
    run_calls(sim, system, caller, "go", 4)
    shard_snap = profiler.snapshot_actors(
        [system.directory.lookup(shard.actor_id)])[0]
    caller_snap = profiler.snapshot_actors(
        [system.directory.lookup(caller.actor_id)])[0]
    assert shard_snap.net_bytes_per_min > 0
    assert caller_snap.net_bytes_per_min > 0


def test_local_messages_do_not_count_as_network():
    sim, system, profiler = setup()
    server = system.provisioner.servers[0]
    shard = system.create_actor(Shard, server=server)
    caller = system.create_actor(Caller, shard, server=server)
    run_calls(sim, system, caller, "go", 4)
    snap = profiler.snapshot_actors(
        [system.directory.lookup(shard.actor_id)])[0]
    assert snap.net_bytes_per_min == 0.0


def test_refs_snapshotted_from_properties():
    sim, system, profiler = setup()
    shard_a = system.create_actor(Shard)
    shard_b = system.create_actor(Shard)
    instance = system.actor_instance(shard_a)
    instance.items = [shard_b]
    snap = profiler.snapshot_actors(
        [system.directory.lookup(shard_a.actor_id)])[0]
    assert snap.refs["items"] == (shard_b,)


def test_server_snapshot():
    sim, system, profiler = setup()
    server = system.provisioner.servers[0]
    shard = system.create_actor(Shard, server=server)
    run_calls(sim, system, shard, "write", 5, "x")
    records = system.actors_on(server)
    snap = profiler.snapshot_server(server, records)
    assert snap.actor_count == 1
    assert snap.instance_type == "m5.large"
    assert snap.cpu_perc >= 0.0


def test_overhead_charge_submits_cpu_work():
    sim, system, _ = setup(profiled=False)
    server = system.provisioner.servers[0]
    heavy = ProfilingRuntime(sim, overhead_cpu_ms=1.0)
    system.add_hooks(heavy)
    shard = system.create_actor(Shard, server=server)
    run_calls(sim, system, shard, "read", 10)
    # 10 messages x 1 ms overhead charged to the server on top of the
    # 10 x 2 ms handler compute.
    assert server.cpu_meter.lifetime_total == pytest.approx(30.0, rel=0.01)
    assert heavy.messages_profiled == 10


def test_destroyed_actor_stats_dropped():
    sim, system, profiler = setup()
    shard = system.create_actor(Shard)
    run_calls(sim, system, shard, "read", 2)
    system.destroy_actor(shard)
    assert shard.actor_id not in profiler._stats


@pytest.mark.parametrize("incremental", [True, False])
def test_zero_window_profiler_does_not_divide_by_zero(incremental):
    # Regression: window_ms=0 made the per-minute scaling divide by an
    # effective window of zero and raise ZeroDivisionError.
    sim, system, _ = setup(profiled=False)
    profiler = ProfilingRuntime(sim, window_ms=0.0, incremental=incremental)
    system.add_hooks(profiler)
    shard = system.create_actor(Shard, server=system.provisioner.servers[0])
    run_calls(sim, system, shard, "read", 3)
    snap = profiler.snapshot_actors(
        [system.directory.lookup(shard.actor_id)])[0]
    assert snap.cpu_ms_per_min == 0.0
    assert snap.cpu_perc == 0.0
    assert all(v == 0.0 for v in snap.call_count_per_min.values())


@pytest.mark.parametrize("incremental", [True, False])
def test_zero_group_total_percentages_are_zero(incremental):
    # A group whose windowed call counts all decayed to zero must produce
    # 0% shares, not a divide-by-zero (the _fill_percentages guard).
    sim, system, _ = setup(profiled=False)
    profiler = ProfilingRuntime(sim, window_ms=10_000.0,
                                incremental=incremental)
    system.add_hooks(profiler)
    server = system.provisioner.servers[0]
    first = system.create_actor(Shard, server=server)
    second = system.create_actor(Shard, server=server)
    run_calls(sim, system, first, "read", 4)
    run_calls(sim, system, second, "read", 2)
    sim.run(until=sim.now + 800_000.0)  # far past every retained bucket
    snaps = profiler.snapshot_actors(system.actors_on(server))
    for snap in snaps:
        for value in snap.call_perc.values():
            assert value == 0.0


def test_snapshot_cache_counters():
    sim, system, profiler = setup()
    server = system.provisioner.servers[0]
    shard = system.create_actor(Shard, server=server)
    run_calls(sim, system, shard, "read", 3)
    record = system.directory.lookup(shard.actor_id)
    profiler.snapshot_actors([record])
    misses = profiler.snapshot_cache_misses
    # Same instant, nothing changed: served from cache.
    profiler.snapshot_actors([record])
    assert profiler.snapshot_cache_hits >= 1
    assert profiler.snapshot_cache_misses == misses
    # New traffic dirties the actor: recomputed.
    run_calls(sim, system, shard, "read", 1)
    profiler.snapshot_actors([record])
    assert profiler.snapshot_cache_misses > misses


def test_resource_perc_accessors_validate():
    sim, system, profiler = setup()
    shard = system.create_actor(Shard)
    snap = profiler.snapshot_actors(
        [system.directory.lookup(shard.actor_id)])[0]
    for resource in ("cpu", "mem", "net"):
        assert snap.resource_perc(resource) >= 0.0
        assert snap.demand(resource) >= 0.0
    with pytest.raises(ValueError):
        snap.resource_perc("disk")
    with pytest.raises(ValueError):
        snap.demand("disk")
