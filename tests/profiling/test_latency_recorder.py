"""Property tests: LatencyRecorder vs a brute-force last-N reference.

``LatencyRecorder`` promises nearest-rank percentiles over exactly the
most recent ``capacity`` samples, with lifetime (un-windowed)
count/mean/max.  The reference here is deliberately dumb: keep every
sample in a list, slice the last N, sort, index ``ceil(p/100 * n) - 1``.
Random capacities, random sample streams, and interleaved queries (the
lazy-sort path is only interesting when queries and writes interleave)
must agree exactly.

``derandomize=True`` keeps the suite reproducible in CI.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.profiling import LatencyRecorder

_samples = st.lists(
    st.floats(min_value=-10.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=120)

_capacities = st.integers(min_value=1, max_value=48)

_ps = st.floats(min_value=0.001, max_value=100.0,
                allow_nan=False, allow_infinity=False)


def brute_percentile(samples, capacity, p):
    retained = sorted(max(s, 0.0) for s in samples[-capacity:])
    if not retained:
        return None
    rank = math.ceil(p / 100.0 * len(retained))
    return retained[rank - 1]


@settings(derandomize=True, max_examples=200)
@given(samples=_samples, capacity=_capacities, p=_ps)
def test_percentile_matches_brute_force(samples, capacity, p):
    rec = LatencyRecorder(capacity=capacity)
    rec.extend(samples)
    assert rec.percentile(p) == brute_percentile(samples, capacity, p)
    assert len(rec) == min(len(samples), capacity)


@settings(derandomize=True, max_examples=100)
@given(samples=_samples, capacity=_capacities)
def test_lifetime_aggregates_are_unwindowed(samples, capacity):
    rec = LatencyRecorder(capacity=capacity)
    rec.extend(samples)
    clamped = [max(s, 0.0) for s in samples]
    assert rec.count == len(samples)
    if samples:
        assert rec.max_ms == max(clamped)
        assert rec.mean_ms() == pytest.approx(sum(clamped) / len(clamped))
    else:
        assert rec.mean_ms() is None


def test_interleaved_queries_and_writes():
    """The lazy sort must never serve a stale view after a write."""
    rng = random.Random(20260808)
    for capacity in (1, 2, 7, 32):
        rec = LatencyRecorder(capacity=capacity)
        history = []
        for step in range(400):
            if rng.random() < 0.7 or not history:
                sample = rng.uniform(0.0, 500.0)
                history.append(sample)
                rec.record(sample)
            else:
                p = rng.choice([1.0, 50.0, 90.0, 95.0, 99.0, 100.0])
                assert rec.percentile(p) == brute_percentile(
                    history, capacity, p), (capacity, step, p)
        summary = rec.summary()
        assert summary["count"] == len(history)
        assert summary["p99"] == brute_percentile(history, capacity, 99.0)


def test_percentiles_keys_and_empty_behaviour():
    rec = LatencyRecorder()
    assert rec.percentile(50.0) is None
    assert rec.percentiles() == {"p50": None, "p95": None, "p99": None}
    assert rec.summary()["max_ms"] is None
    rec.record(5.0)
    assert rec.percentiles((50.0, 99.9)) == {"p50": 5.0, "p99.9": 5.0}


def test_out_of_range_percentile_raises():
    rec = LatencyRecorder()
    rec.record(1.0)
    for bad in (0.0, -1.0, 100.001):
        with pytest.raises(ValueError):
            rec.percentile(bad)
    with pytest.raises(ValueError):
        LatencyRecorder(capacity=0)


def test_negative_samples_clamp_to_zero():
    rec = LatencyRecorder(capacity=4)
    rec.extend([-3.0, -1.0, 2.0])
    assert rec.percentile(1.0) == 0.0
    assert rec.max_ms == 2.0
    assert rec.total_ms == 2.0


def test_reset_clears_everything():
    rec = LatencyRecorder(capacity=8)
    rec.extend([1.0, 2.0, 3.0])
    rec.reset()
    assert rec.count == 0
    assert len(rec) == 0
    assert rec.percentile(50.0) is None
    rec.record(7.0)
    assert rec.percentile(50.0) == 7.0
