"""Golden-trace refresh: the calendar kernel and delivery batching are
invisible to every recorded behaviour.

The sim-kernel rework (calendar-queue scheduler, zero-delay FIFO,
coalesced local delivery) is only admissible if a full application run
is *bit-identical* to the reference configuration — the heap kernel with
batching off.  Two layers of evidence:

1. the Fig. 7 / Fig. 9 equivalence scenarios (PageRank rebalancing,
   E-Store colocation + reserve) re-run under every kernel/batching
   combination must produce identical elasticity traces, final
   placements and migration logs;
2. every shrunk fuzz-corpus artifact in ``tests/fuzz/corpus/`` replayed
   under the calendar kernel must produce the same verdict fingerprint
   (violations, migrations, drop/shed/checkpoint counts, final sim
   clock) as the heap kernel, with the invariant checker attached.

The kernel is selected by patching ``DEFAULT_SCHEDULER`` — the same
module-global ``Simulator()`` consults on every construction — so the
scenario builders need no plumbing changes.
"""

import glob
import os
from contextlib import contextmanager

import pytest

import repro.actors.system as system_module
import repro.sim.engine as engine
from repro.cli import load_fuzz_scenario
from repro.fuzz import run_scenario

from test_incremental_equivalence import (run_estore_scenario,
                                          run_pagerank_scenario)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "fuzz",
                          "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: (scheduler, batch_local_delivery) — reference first.
CONFIGS = (("heap", False), ("heap", True),
           ("calendar", False), ("calendar", True))


@contextmanager
def kernel_config(scheduler, batch_local):
    saved = engine.DEFAULT_SCHEDULER
    engine.DEFAULT_SCHEDULER = scheduler
    orig_init = system_module.ActorSystem.__init__

    def patched_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        self.batch_local_delivery = batch_local

    system_module.ActorSystem.__init__ = patched_init
    try:
        yield
    finally:
        engine.DEFAULT_SCHEDULER = saved
        system_module.ActorSystem.__init__ = orig_init


def result_fingerprint(result):
    """Every externally observable field of a FuzzResult (minus the
    scenario itself, which is the input)."""
    return {
        "violations": [str(v) for v in result.violations],
        "error": result.error,
        "migrations": result.migrations,
        "sim_time_ms": result.sim_time_ms,
        "checks_run": result.checks_run,
        "messages_dropped": result.messages_dropped,
        "partition_drops": result.partition_drops,
        "checkpoints_written": result.checkpoints_written,
        "checkpoints_acked": result.checkpoints_acked,
        "state_restores": result.state_restores,
        "messages_shed": result.messages_shed,
        "requests_rejected": result.requests_rejected,
        "dead_letters": result.dead_letters,
        "store_summary": result.store_summary,
    }


def test_pagerank_golden_trace_survives_kernel_swap():
    with kernel_config("heap", False):
        reference = run_pagerank_scenario(incremental=True)
    for scheduler, batch in CONFIGS[1:]:
        with kernel_config(scheduler, batch):
            observed = run_pagerank_scenario(incremental=True)
        assert observed == reference, (scheduler, batch)
    # Non-vacuous: the scenario decided something under every config.
    assert reference[2], "scenario produced no migrations"


def test_estore_golden_trace_survives_kernel_swap():
    with kernel_config("heap", False):
        reference = run_estore_scenario(incremental=True)
    # The full matrix costs ~7 s per run; the off-diagonal heap+batch
    # case adds nothing the PageRank matrix doesn't already cover.
    for scheduler, batch in (("calendar", False), ("calendar", True)):
        with kernel_config(scheduler, batch):
            observed = run_estore_scenario(incremental=True)
        assert observed == reference, (scheduler, batch)
    assert reference[2], "scenario produced no migrations"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p)[:-5] for p in CORPUS])
def test_corpus_replay_identical_across_kernels(path):
    scenario = load_fuzz_scenario(path)
    with kernel_config("heap", False):
        reference = run_scenario(scenario)
    with kernel_config("calendar", True):
        observed = run_scenario(scenario)
    assert result_fingerprint(observed) == result_fingerprint(reference)
    # The artifacts pin *fixed* bugs: both kernels must replay clean,
    # otherwise the fingerprints could "agree" on a crash.
    assert reference.ok, reference.summary()
    assert observed.ok, observed.summary()


def test_corpus_is_not_empty():
    assert CORPUS, f"no corpus artifacts in {CORPUS_DIR}"
