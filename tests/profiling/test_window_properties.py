"""Property tests: ring-buffer meters vs brute-force and legacy meters.

The incremental profiling path is only admissible because
:class:`RingMeter` promises *bit-identical* windowed totals to the
original :class:`WindowedMeter` (see the exactness contract in
``repro/core/profiling/ring.py``).  These properties drive both
implementations — plus an independent brute-force reference — through
random event sequences and assert exact ``==`` on every query, with the
edges called out in the PR checklist: empty windows, window-boundary
bucket cutoffs, and actor resurrection.

``derandomize=True`` keeps the suite reproducible in CI.
"""

from hypothesis import given, settings, strategies as st

from repro.actors import Actor
from repro.bench import build_cluster
from repro.cluster import WindowedMeter
from repro.core.profiling import ProfilingRuntime, RingMeter
from repro.sim import Simulator

WINDOW_MS = 10_000.0
BUCKET_MS = 500.0

# An event sequence: (advance time by delta, record amount).  Deltas mix
# sub-bucket steps with jumps past the whole window so eviction and the
# stale-prefix recompute both trigger.
_events = st.lists(
    st.tuples(
        st.one_of(
            st.floats(min_value=0.0, max_value=3 * BUCKET_MS),
            st.floats(min_value=WINDOW_MS, max_value=3 * WINDOW_MS)),
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False)),
    max_size=60)

# Query windows around the interesting sizes: empty, sub-bucket, exact
# bucket multiples, the configured window itself.
_windows = st.sampled_from([
    0.0, 1.0, BUCKET_MS / 2, BUCKET_MS, 3 * BUCKET_MS,
    WINDOW_MS / 2, WINDOW_MS - BUCKET_MS, WINDOW_MS])


class _BruteForce:
    """Independent reference: keeps every (bucket, amount) event and
    recomputes totals the way WindowedMeter defines them — accumulate
    arrival-ordered events into buckets, then sum surviving buckets
    oldest-first."""

    def __init__(self, sim):
        self.sim = sim
        self.events = []

    def add(self, amount):
        self.events.append((int(self.sim.now // BUCKET_MS), amount))

    def total(self, window_ms):
        if window_ms <= 0:
            return 0.0
        buckets = {}
        for index, amount in self.events:
            if index in buckets:
                buckets[index] += amount
            else:
                buckets[index] = amount
        cutoff = int((self.sim.now - window_ms) // BUCKET_MS)
        result = 0.0
        for index, total in buckets.items():  # insertion == arrival order
            if index >= cutoff:
                result += total
        return result


def _drive(events):
    sim = Simulator()
    ring = RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS)
    legacy = WindowedMeter(sim, bucket_ms=BUCKET_MS)
    brute = _BruteForce(sim)
    for delta, amount in events:
        sim.run(until=sim.now + delta)
        ring.add(amount)
        legacy.add(amount)
        brute.add(amount)
    return sim, ring, legacy, brute


@settings(derandomize=True, max_examples=200, deadline=None)
@given(events=_events, window=_windows, tail_ms=st.floats(0.0, WINDOW_MS))
def test_ring_matches_legacy_and_brute_force(events, window, tail_ms):
    sim, ring, legacy, brute = _drive(events)
    sim.run(until=sim.now + tail_ms)  # query mid-window, not only on adds
    assert ring.total(window) == legacy.total(window)
    assert ring.total(window) == brute.total(window)
    assert ring.total() == legacy.total(WINDOW_MS)
    assert ring.rate_per_ms(window) == legacy.rate_per_ms(window)
    assert ring.lifetime_total == legacy.lifetime_total


@settings(derandomize=True, max_examples=100, deadline=None)
@given(events=_events)
def test_interleaved_queries_do_not_perturb_state(events):
    """total() mutates internal caches (eviction, prefix recompute);
    interleaving queries between adds must never change later answers."""
    sim_a, ring_a, legacy_a, _ = _drive(events)
    # Second run: same events, but query after every add.
    sim_b = Simulator()
    ring_b = RingMeter(sim_b, WINDOW_MS, bucket_ms=BUCKET_MS)
    for delta, amount in events:
        sim_b.run(until=sim_b.now + delta)
        ring_b.add(amount)
        ring_b.total()
        ring_b.total(BUCKET_MS)
    assert ring_b.total() == ring_a.total() == legacy_a.total(WINDOW_MS)


def test_empty_window_and_empty_meter():
    sim = Simulator()
    ring = RingMeter(sim, WINDOW_MS)
    assert ring.total() == 0.0
    assert ring.total(0.0) == 0.0
    assert ring.rate_per_ms() == 0.0
    ring.add(5.0)
    assert ring.total(0.0) == 0.0          # empty window is always zero
    assert ring.total(-1.0) == 0.0
    zero = RingMeter(sim, 0.0)             # zero-width configured window
    zero.add(5.0)
    assert zero.total() == 0.0
    assert zero.rate_per_ms() == 0.0


def test_window_boundary_bucket_is_included():
    """WindowedMeter's cutoff comparison keeps the partially expired
    boundary bucket; the ring must reproduce that, not "improve" it."""
    sim = Simulator()
    ring = RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS)
    legacy = WindowedMeter(sim, bucket_ms=BUCKET_MS)
    for meter in (ring, legacy):
        meter.add(3.0)                     # bucket 0
    sim.run(until=WINDOW_MS)               # exactly one window later
    assert ring.total() == legacy.total(WINDOW_MS) == 3.0
    sim.run(until=WINDOW_MS + BUCKET_MS - 1e-9)
    assert ring.total() == legacy.total(WINDOW_MS) == 3.0
    sim.run(until=WINDOW_MS + BUCKET_MS)   # boundary bucket expires
    assert ring.total() == legacy.total(WINDOW_MS) == 0.0


def test_eviction_bounds_memory():
    sim = Simulator()
    ring = RingMeter(sim, WINDOW_MS, bucket_ms=BUCKET_MS)
    legacy = WindowedMeter(sim, bucket_ms=BUCKET_MS)
    for step in range(5_000):
        sim.run(until=sim.now + BUCKET_MS)
        ring.add(1.0)
        legacy.add(1.0)
    # Retention spans indices [newest - _max_buckets, newest] inclusive.
    assert len(ring._buckets) <= ring._max_buckets + 1
    assert ring.total() == legacy.total(WINDOW_MS)
    assert ring.lifetime_total == 5_000.0


class _Idle(Actor):
    def poke(self):
        yield self.compute(1.0)
        return True


def test_resurrection_resets_profile():
    """A resurrected actor restarts from a blank profile in both modes —
    pre-crash rates must not leak through the snapshot cache."""
    for incremental in (True, False):
        bed = build_cluster(1, "m5.large", seed=3)
        ref = bed.system.create_actor(_Idle)
        record = bed.system.directory.lookup(ref.actor_id)
        profiler = ProfilingRuntime(bed.sim, window_ms=WINDOW_MS,
                                    incremental=incremental)
        profiler.on_actor_created(record)
        profiler.on_compute(record, 42.0)
        bed.sim.run(until=bed.sim.now + BUCKET_MS)
        before = profiler.snapshot_actors([record])[0]
        assert before.cpu_ms_per_min > 0.0
        profiler.on_actor_resurrected(record)
        after = profiler.snapshot_actors([record])[0]
        assert after.cpu_ms_per_min == 0.0
        assert after.call_count_per_min == {}
        # And the fresh profile keeps metering normally afterwards.
        profiler.on_compute(record, 7.0)
        again = profiler.snapshot_actors([record])[0]
        assert again.cpu_ms_per_min > 0.0
