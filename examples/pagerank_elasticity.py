#!/usr/bin/env python
"""PageRank elasticity demo (paper §5.4 in miniature).

Partitions a scale-free social graph into 16 worker actors, places them
randomly over 4 servers, and compares three elasticity managers:

- PLASMA's balance rule (CPU-aware),
- Orleans-style equal-actor-count balancing (CPU-blind),
- no elasticity.

Run:  python examples/pagerank_elasticity.py
"""

import random

from repro.apps.pagerank import (PAGERANK_POLICY, PageRankWorker,
                                 build_pagerank, collect_ranks,
                                 run_iterations)
from repro.baselines import OrleansBalancer
from repro.bench import build_cluster, format_table
from repro.core import ElasticityManager, EmrConfig, compile_source
from repro.graphs import pagerank, social_graph


def run(mode, graph, placement):
    bed = build_cluster(4, "m5.large", seed=4)
    deployment = build_pagerank(bed, graph, 16, placement=list(placement))
    manager = None
    if mode == "plasma":
        policy = compile_source(PAGERANK_POLICY, [PageRankWorker])
        manager = ElasticityManager(bed.system, policy, EmrConfig(
            period_ms=5_000.0, gem_wait_ms=300.0))
        manager.start()
    elif mode == "orleans":
        manager = OrleansBalancer(bed.system, period_ms=5_000.0)
        manager.start()
    stats = run_iterations(deployment, 30)
    steady = sum(stats.times_ms[-5:]) / 5
    migrations = manager.migrations_total() if manager else 0
    error = max(abs(a - b) for a, b in zip(
        pagerank(graph, iterations=30), collect_ranks(deployment)))
    return steady, migrations, error


def main():
    graph = social_graph(1500, 3, superhubs=5, hub_fraction=0.06,
                         rng=random.Random(2))
    rng = random.Random(104)
    placement = [rng.randrange(4) for _ in range(16)]

    rows = []
    for mode in ("plasma", "orleans", "none"):
        steady, migrations, error = run(mode, graph, placement)
        rows.append([mode, f"{steady:.0f}", migrations, f"{error:.1e}"])
    print(format_table(
        ["elasticity", "steady iteration (ms)", "migrations",
         "max rank error vs reference"],
        rows, title="Distributed PageRank under three elasticity "
                    "managers"))
    print("\nNote: migration never perturbs the computation — the rank "
          "error column stays at numerical noise.")


if __name__ == "__main__":
    main()
