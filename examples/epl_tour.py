#!/usr/bin/env python
"""A tour of the elasticity programming language (EPL).

Shows the full compiler pipeline: parsing, validation against the actor
program, conflict warnings, rule classification (LEM vs GEM side), and
the serialized elasticity configuration.

Run:  python examples/epl_tour.py
"""

import json

from repro import Actor, compile_source, parse_policy
from repro.core.epl import EplValidationError


class Folder(Actor):
    files: list

    def __init__(self):
        self.files = []

    def open(self):
        return None


class File(Actor):
    def read(self):
        return None


POLICY = """
# [r-r] + [r-i]: a mixed rule — reserve is global (GEM side), the
# colocate that follows it is local (LEM side).
server.cpu.perc > 80 and
client.call(Folder(fo).open).perc > 40 and
File(fi) in ref(fo.files) =>
    reserve(fo, cpu); colocate(fo, fi);

# [r-r]: pure resource rule with both bounds.
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Folder}, cpu);

# [r-i]: pin — and a deliberate conflict with balance above.
true => pin(Folder(f));
"""


def main():
    policy = parse_policy(POLICY)
    print(f"parsed {len(policy)} rules\n")

    compiled = compile_source(POLICY, [Folder, File])
    print(f"actor (LEM-side) rules:    {len(compiled.actor_rules)}")
    print(f"resource (GEM-side) rules: {len(compiled.resource_rules)}")

    print("\ncompiler warnings (conflicting rules, paper §4.3):")
    for warning in compiled.warnings:
        print(f"  - {warning}")

    print("\nserialized elasticity configuration:")
    config = compiled.to_config()
    print(json.dumps(config["rules"][0], indent=2))

    print("\nvalidation catches program mismatches:")
    try:
        compile_source("client.call(Folder(f).destroy).count > 1 "
                       "=> pin(f);", [Folder, File])
    except EplValidationError as error:
        print(f"  EplValidationError: {error}")


if __name__ == "__main__":
    main()
