#!/usr/bin/env python
"""Quickstart: an elastic stateful application in ~60 lines.

Builds a 2-server simulated cluster, defines a CPU-hungry actor type,
attaches a one-line PLASMA elasticity policy, overloads one server, and
watches the elasticity runtime rebalance the actors.

Run:  python examples/quickstart.py
"""

from repro import (Actor, ActorSystem, Client, ElasticityManager,
                   EmrConfig, compile_source)
from repro.bench import build_cluster
from repro.sim import spawn


class Worker(Actor):
    """A stateful actor whose handler burns CPU."""

    def __init__(self):
        self.jobs_done = 0

    def crunch(self, cpu_ms):
        yield self.compute(cpu_ms)      # occupy a core for cpu_ms
        self.jobs_done += 1
        return self.jobs_done


POLICY = """
# Keep every server's CPU between 60% and 80%; migrate Workers to fix it.
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);
"""


def main():
    bed = build_cluster(num_servers=2, instance_type="m5.large", seed=1)
    system: ActorSystem = bed.system

    # Create 6 workers, all crowded onto the first server.
    workers = [system.create_actor(Worker, server=bed.servers[0])
               for _ in range(6)]

    # Compile the elasticity policy against the actor program and start
    # the elasticity management runtime (profiling + LEMs + GEM).
    policy = compile_source(POLICY, [Worker])
    manager = ElasticityManager(system, policy,
                                EmrConfig(period_ms=10_000.0))
    manager.start()

    # Closed-loop clients keep the workers busy.
    client = Client(system)

    def load(worker):
        while bed.sim.now < 60_000.0:
            yield client.call(worker, "crunch", 40.0)

    for worker in workers:
        spawn(bed.sim, load(worker))

    print("before:", {s.name: len(system.actors_on(s))
                      for s in bed.servers})
    bed.run(until_ms=60_000.0)
    print("after: ", {s.name: len(system.actors_on(s))
                      for s in bed.servers})
    print(f"migrations performed: {manager.migrations_total()}")
    for event in manager.migration_log:
        print(f"  t={event.time_ms / 1000:.1f}s {event.actor} "
              f"{event.src} -> {event.dst} ({event.kind})")
    print("server CPU%:", {s.name: round(s.cpu_percent(10_000.0), 1)
                           for s in bed.servers})


if __name__ == "__main__":
    main()
