#!/usr/bin/env python
"""Why PLASMA exists: state in a storage tier vs state in actors.

Reproduces the paper's §2.1 motivation in miniature.  The same PageRank
runs twice:

1. as stateless serverless functions that load/store every partition
   through a DynamoDB-like storage tier each iteration;
2. as stateful actors that keep their partition in memory and exchange
   only boundary contributions.

Both produce bit-identical ranks; one is an order of magnitude slower.

Run:  python examples/serverless_vs_actors.py
"""

import random

from repro.apps.pagerank import (build_pagerank, collect_ranks,
                                 run_iterations)
from repro.bench import build_cluster, format_table
from repro.graphs import pagerank, powerlaw_graph
from repro.serverless import (FunctionPlatform, ServerlessPageRank,
                              StorageTier, upload_graph)
from repro.sim import Simulator

ITERATIONS = 5
PARTITIONS = 8


def main():
    graph = powerlaw_graph(1500, 4, random.Random(7))
    reference = pagerank(graph, iterations=ITERATIONS)

    # -- architecture 1: stateless functions + storage tier -------------
    sim = Simulator()
    store = StorageTier(sim)
    platform = FunctionPlatform(sim)
    manifest = upload_graph(sim, store, graph, PARTITIONS,
                            bytes_per_node=260.0, bytes_per_edge=640.0)
    serverless = ServerlessPageRank(sim, store, platform, PARTITIONS,
                                    graph.num_nodes,
                                    bytes_per_node=260.0,
                                    bytes_per_edge=640.0)
    outcome = serverless.run(ITERATIONS)
    serverless_ranks = serverless.collect_ranks()

    # -- architecture 2: stateful actors --------------------------------
    bed = build_cluster(4, "m5.large", seed=4)
    deployment = build_pagerank(bed, graph, PARTITIONS, alpha_ms=0.4)
    stats = run_iterations(deployment, ITERATIONS, load_phase=False)
    actor_ranks = collect_ranks(deployment)

    s_iter = sum(outcome.iteration_ms) / ITERATIONS / 1000.0
    a_iter = sum(stats.times_ms) / ITERATIONS / 1000.0
    rows = [
        ["graph upload into the store (s)",
         f"{manifest['upload_ms'] / 1000:.1f}", "—"],
        ["mean iteration (s)", f"{s_iter:.1f}", f"{a_iter:.2f}"],
        ["bytes through the storage tier (MB)",
         f"{outcome.bytes_moved / 1e6:.0f}", "0"],
        ["max |rank - reference|",
         f"{max(abs(a - b) for a, b in zip(reference, serverless_ranks)):.1e}",
         f"{max(abs(a - b) for a, b in zip(reference, actor_ranks)):.1e}"],
    ]
    print(format_table(["quantity", "serverless + store", "actors"],
                       rows, title="The same PageRank, two architectures "
                                   "(paper §2.1)"))
    print(f"\nslowdown: {s_iter / a_iter:.1f}x — \"it is currently "
          f"impractical to develop stateful\napplications requiring "
          f"frequent state load/store\" (the paper, on why\nelasticity "
          f"must reach stateful actors instead).")


if __name__ == "__main__":
    main()
