#!/usr/bin/env python
"""Metadata Server demo: why elasticity needs application semantics.

Reproduces the paper's Fig. 5 intuition at small scale.  One folder gets
half of all client traffic.  Three managers compete:

- PLASMA's rule: reserve the hot folder an idle server AND colocate its
  files with it (application semantics: opening a folder touches its
  files);
- def-rule: blindly migrate the hottest actor to an idle server (the
  files stay behind, every open now pays remote file reads);
- no elasticity.

Run:  python examples/hot_folder_metadata.py
"""

from repro.apps.metadata import run_metadata_experiment
from repro.bench import format_table


def main():
    rows = []
    for mode in ("res-col-rule", "def-rule", "no-rule"):
        result = run_metadata_experiment(
            mode, num_clients=16, duration_ms=160_000.0,
            period_ms=50_000.0)
        rows.append([mode, f"{result.mean_before_ms:.1f}",
                     f"{result.mean_after_ms:.1f}", result.migrations])
    print(format_table(
        ["setup", "latency before (ms)", "latency after (ms)",
         "migrations"], rows,
        title="Metadata Server: latency before/after the elasticity "
              "period"))
    print("\nThe def-rule moves the hot folder but strands its files on "
          "the old\nserver, so every open still crosses the network — "
          "no visible win.\nThe PLASMA rule moves folder *and* files: "
          "a large latency cut.")


if __name__ == "__main__":
    main()
