"""Setup shim for offline environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables pip's
legacy editable-install path (`pip install -e . --no-build-isolation`).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of PLASMA: Programmable Elasticity for Stateful "
        "Cloud Computing Applications (EuroSys 2020)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
